"""Content-addressed identity and the solver result cache.

Covers the PR-4 tentpole invariants: `Scenario.fingerprint` is a stable
content hash (float-canonical, alias-proof, pickle-stable), and the
`SolverCache` behind `solve()` returns exactly what a fresh solve would
— hits on identical requests, misses on any observable difference.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network import ClosedNetwork, Station
from repro.solvers import (
    USE_DEFAULT_CACHE,
    Scenario,
    SolverCache,
    WorkloadClass,
    cache_stats,
    default_cache,
    resolve_cache,
    set_default_cache,
    solve,
    solve_stack,
)
from repro.solvers.cache import canonical_options


@pytest.fixture
def net():
    return ClosedNetwork(
        [Station("web", demand=0.02), Station("db", demand=0.05)], think_time=1.0
    )


@pytest.fixture
def multiserver_net():
    return ClosedNetwork(
        [Station("web", demand=0.08, servers=4), Station("db", demand=0.05)],
        think_time=1.0,
    )


class TestFingerprint:
    def test_equal_scenarios_share_fingerprints(self, net):
        a = Scenario(net, 20)
        b = Scenario(net, 20)
        assert a.fingerprint() == b.fingerprint()

    def test_population_think_and_demands_all_split(self, net):
        base = Scenario(net, 20)
        assert base.fingerprint() != Scenario(net, 21).fingerprint()
        assert base.fingerprint() != Scenario(net, 20, think_time=2.0).fingerprint()
        assert (
            base.fingerprint()
            != Scenario(net, 20, demands=(0.02, 0.051)).fingerprint()
        )

    def test_think_override_equals_native_think(self, net):
        overridden = Scenario(net, 20, think_time=net.think_time)
        assert overridden.fingerprint() == Scenario(net, 20).fingerprint()

    def test_server_counts_split(self, net, multiserver_net):
        a = Scenario(net, 20, demands=(0.08, 0.05))
        b = Scenario(multiserver_net, 20)
        assert a.fingerprint() != b.fingerprint()

    def test_permuted_demand_matrix_misses(self, net):
        m = np.column_stack([np.full(20, 0.02), np.full(20, 0.05)])
        a = Scenario(net, 20, demand_matrix=m)
        b = Scenario(net, 20, demand_matrix=m[:, ::-1].copy())
        assert a.fingerprint() != b.fingerprint()

    def test_negative_zero_is_canonical(self, net):
        m = np.column_stack([np.full(20, 0.02), np.full(20, 0.05)])
        m_negzero = m.copy()
        m_negzero[0, 0] = 0.0
        m_poszero = m.copy()
        m_poszero[0, 0] = -0.0
        a = Scenario(net, 20, demand_matrix=m_negzero)
        b = Scenario(net, 20, demand_matrix=m_poszero)
        assert a.fingerprint() == b.fingerprint()

    def test_matrix_and_equivalent_functions_agree_or_split_safely(self, net):
        # A demand-functions scenario and the matrix of its integer-grid
        # samples are observably identical to every registered solver.
        fns = {"web": lambda n: 0.02 + 0.001 * n, "db": lambda n: 0.05}
        fn_scenario = Scenario(net, 10, demand_functions=fns)
        matrix = fn_scenario.resolved_demand_matrix()
        m_scenario = Scenario(net, 10, demand_matrix=np.array(matrix))
        assert fn_scenario.fingerprint() == m_scenario.fingerprint()

    def test_fractional_demand_level_splits_fn_and_matrix(self, net):
        # At demand_level=2.5 the callable evaluates off the integer grid
        # while the matrix scenario rounds to a sampled row — different
        # fixed_demands, so the fingerprints must differ.
        fns = {"web": lambda n: 0.02 + 0.001 * n, "db": lambda n: 0.05}
        fn_scenario = Scenario(net, 10, demand_functions=fns, demand_level=2.5)
        matrix = Scenario(net, 10, demand_functions=fns).resolved_demand_matrix()
        m_scenario = Scenario(net, 10, demand_matrix=np.array(matrix), demand_level=2.5)
        assert not np.array_equal(fn_scenario.fixed_demands(), m_scenario.fixed_demands())
        assert fn_scenario.fingerprint() != m_scenario.fingerprint()

    def test_network_name_does_not_split(self, net):
        renamed = ClosedNetwork(net.stations, think_time=net.think_time, name="other")
        assert Scenario(net, 20).fingerprint() == Scenario(renamed, 20).fingerprint()

    def test_multiclass_fingerprints(self, net):
        def cls(pop):
            return (
                WorkloadClass("browse", pop, {"web": 0.02, "db": 0.05}, 0.5),
                WorkloadClass("buy", 3, {"web": lambda n: 0.01 * n, "db": 0.02}, 0.2),
            )

        a = Scenario(net, 6, classes=cls(3))
        b = Scenario(net, 6, classes=cls(3))
        c = Scenario(net, 6, classes=cls(4))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_pickle_round_trip(self, net):
        m = np.column_stack([np.linspace(0.02, 0.03, 20), np.full(20, 0.05)])
        sc = Scenario(net, 20, demand_matrix=m)
        fp = sc.fingerprint()
        clone = pickle.loads(pickle.dumps(sc))
        assert clone.fingerprint() == fp

    @settings(max_examples=25, deadline=None)
    @given(
        web=st.floats(min_value=0.001, max_value=5.0, allow_nan=False),
        db=st.floats(min_value=0.001, max_value=5.0, allow_nan=False),
        n=st.integers(min_value=1, max_value=60),
        think=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_fingerprint_stable_across_pickle(self, web, db, n, think):
        network = ClosedNetwork(
            [Station("web", demand=web), Station("db", demand=db)], think_time=think
        )
        sc = Scenario(network, n)
        clone = pickle.loads(pickle.dumps(sc))
        assert clone.fingerprint() == sc.fingerprint()
        rebuilt = Scenario(network, n)
        assert rebuilt.fingerprint() == sc.fingerprint()


class TestScenarioImmutability:
    def test_mutating_callers_matrix_does_not_change_identity(self, net):
        m = np.column_stack([np.full(20, 0.02), np.full(20, 0.05)])
        sc = Scenario(net, 20, demand_matrix=m)
        fp = sc.fingerprint()
        m[:] = 99.0  # the caller's array, not the scenario's copy
        assert sc.fingerprint() == fp
        assert float(sc.demand_matrix[0, 0]) == 0.02

    def test_mutating_callers_fn_mapping_does_not_alias(self, net):
        fns = {"web": lambda n: 0.02, "db": lambda n: 0.05}
        sc = Scenario(net, 10, demand_functions=fns)
        fp = sc.fingerprint()
        fns["web"] = lambda n: 123.0
        assert np.isclose(sc.fixed_demands()[0], 0.02)
        assert sc.fingerprint() == fp

    def test_mutating_workload_class_mapping_does_not_alias(self):
        demands = {"web": 0.02, "db": 0.05}
        cls = WorkloadClass("c", 3, demands, 0.5)
        demands["web"] = 9.0
        assert cls.demands["web"] == 0.02

    def test_demand_views_are_read_only(self, net):
        sc = Scenario(net, 10)
        with pytest.raises(ValueError):
            sc.fixed_demands()[0] = 1.0
        with pytest.raises(ValueError):
            sc.resolved_demand_matrix()[0, 0] = 1.0
        matrix_sc = Scenario(net, 10, demand_matrix=np.full((10, 2), 0.03))
        with pytest.raises(ValueError):
            matrix_sc.demand_matrix[0, 0] = 1.0


class TestCanonicalOptions:
    def test_order_insensitive(self):
        assert canonical_options({"a": 1, "b": 2.0}) == canonical_options(
            {"b": 2.0, "a": 1}
        )

    def test_negative_zero_folds(self):
        assert canonical_options({"x": -0.0}) == canonical_options({"x": 0.0})

    def test_arrays_and_nested_mappings(self):
        a = canonical_options({"iv": {"lo": np.array([1.0, 2.0])}})
        b = canonical_options({"iv": {"lo": np.array([1.0, 2.0])}})
        c = canonical_options({"iv": {"lo": np.array([1.0, 2.5])}})
        assert a == b and a != c

    def test_callables_are_uncacheable(self):
        assert canonical_options({"fn": lambda x: x}) is None


class TestSolverCache:
    def test_lru_eviction_and_counters(self):
        cache = SolverCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        s = cache.stats()
        assert (s.hits, s.misses, s.evictions, s.size) == (3, 1, 1, 2)

    def test_clear_resets(self):
        cache = SolverCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        s = cache.stats()
        assert (s.hits, s.misses, s.size) == (0, 0, 0)

    def test_put_freezes_result_arrays(self, net):
        cache = SolverCache()
        result = solve(Scenario(net, 10), cache=None)
        cache.put("k", result)
        with pytest.raises(ValueError):
            result.throughput[0] = 0.0

    def test_resolve_cache_spellings(self):
        cache = SolverCache()
        assert resolve_cache(cache) is cache
        assert resolve_cache(None) is None
        assert resolve_cache(USE_DEFAULT_CACHE) is default_cache()
        assert resolve_cache("default") is default_cache()
        with pytest.raises(TypeError):
            resolve_cache("nonsense")

    def test_set_default_cache_swaps_and_restores(self):
        fresh = SolverCache(maxsize=7)
        previous = set_default_cache(fresh)
        try:
            assert default_cache() is fresh
            assert cache_stats().maxsize == 7
        finally:
            set_default_cache(previous)


class TestSolveCaching:
    def test_hit_returns_same_object(self, net):
        cache = SolverCache()
        sc = Scenario(net, 20)
        first = solve(sc, cache=cache)
        second = solve(sc, cache=cache)
        assert second is first
        s = cache.stats()
        assert s.hits == 1 and s.misses == 1

    def test_equal_but_distinct_scenarios_hit(self, net):
        cache = SolverCache()
        first = solve(Scenario(net, 20), cache=cache)
        second = solve(Scenario(net, 20), cache=cache)
        assert second is first

    def test_method_and_options_split_entries(self, net):
        cache = SolverCache()
        sc = Scenario(net, 20, demand_functions={"web": lambda n: 0.02, "db": lambda n: 0.05})
        solve(sc, method="mvasd", cache=cache)
        solve(sc, method="mvasd", single_server=True, cache=cache)
        solve(sc, method="schweitzer-amva", cache=cache)
        s = cache.stats()
        assert s.hits == 0 and s.misses == 3 and s.size == 3

    def test_cache_none_bypasses(self, net):
        sc = Scenario(net, 20)
        a = solve(sc, cache=None)
        b = solve(sc, cache=None)
        assert a is not b
        np.testing.assert_array_equal(a.throughput, b.throughput)

    def test_cached_hit_matches_fresh_solve(self, net, multiserver_net):
        for network in (net, multiserver_net):
            cache = SolverCache()
            sc = Scenario(network, 25)
            warm = solve(sc, cache=cache)
            warm_again = solve(Scenario(network, 25), cache=cache)
            fresh = solve(Scenario(network, 25), cache=None)
            np.testing.assert_allclose(warm_again.throughput, fresh.throughput, atol=1e-10)
            np.testing.assert_allclose(
                warm_again.response_time, fresh.response_time, atol=1e-10
            )
            assert warm_again is warm

    def test_throughput_axis_is_uncacheable(self, net):
        cache = SolverCache()
        sc = Scenario(
            net, 10, demand_functions={"web": lambda n: 0.02, "db": lambda n: 0.05}
        )
        solve(sc, method="mvasd", demand_axis="throughput", cache=cache)
        solve(sc, method="mvasd", demand_axis="throughput", cache=cache)
        s = cache.stats()
        assert s.hits == 0 and s.size == 0 and s.uncacheable == 2

    def test_stack_caching(self, net):
        cache = SolverCache()
        scenarios = [Scenario(net, 15, demands=(0.02 * f, 0.05)) for f in (1.0, 1.5)]
        first = solve_stack(scenarios, cache=cache)
        second = solve_stack(list(scenarios), cache=cache)
        assert second is first
        assert cache.stats().hits == 1

    def test_stack_backend_splits_entries(self, net):
        cache = SolverCache()
        scenarios = [Scenario(net, 15, demands=(0.02 * f, 0.05)) for f in (1.0, 1.5)]
        a = solve_stack(scenarios, method="exact-mva", backend="batched", cache=cache)
        b = solve_stack(scenarios, method="exact-mva", backend="serial", cache=cache)
        assert a is not b
        assert cache.stats().size == 2
        np.testing.assert_allclose(a.throughput, b.throughput, atol=1e-10)


class TestWarmWhatIf:
    def test_repeated_what_if_sweep_hits_cache(self, net):
        from repro.analysis.whatif import Scenario as WhatIfScenario
        from repro.analysis.whatif import evaluate_scenarios

        fns = {"web": lambda n: 0.02 + 0.0001 * n, "db": lambda n: 0.05}
        variants = [
            WhatIfScenario("faster-db", demand_scale={"db": 0.5}),
            WhatIfScenario("slower-web", demand_scale={"web": 1.5}),
        ]
        cache = SolverCache()
        cold = evaluate_scenarios(net, fns, variants, 40, workers=1, cache=cache)
        assert cache.stats().hits == 0
        warm = evaluate_scenarios(net, fns, variants, 40, workers=1, cache=cache)
        stats = cache.stats()
        assert stats.hits >= len(cold)
        for name in cold:
            np.testing.assert_allclose(
                warm[name].result.throughput,
                cold[name].result.throughput,
                atol=1e-10,
            )


class TestCacheCLI:
    def test_cache_subcommand_demo(self, capsys):
        from repro.cli import main
        from repro.solvers import SolverCache, set_default_cache

        previous = set_default_cache(SolverCache())
        try:
            assert main(["cache", "--demo"]) == 0
        finally:
            set_default_cache(previous)
        out = capsys.readouterr().out
        assert "solver result cache" in out
        assert "hits" in out and "misses" in out
        # --demo solves the same scenario twice: one miss, one hit.
        assert any(
            line.split("|")[-1].strip() == "1"
            for line in out.splitlines()
            if line.strip().startswith("hits")
        )

    def test_cache_subcommand_clear_and_maxsize(self, capsys):
        from repro.cli import main
        from repro.solvers import default_cache, set_default_cache

        previous = default_cache()
        try:
            assert main(["cache", "--maxsize", "16", "--clear"]) == 0
            out = capsys.readouterr().out
            assert "0/16" in out
        finally:
            set_default_cache(previous)
