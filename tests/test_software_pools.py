"""Connection pools (software bottlenecks) in the simulator."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station, exact_multiserver_mva
from repro.simulation import ConnectionPool, simulate_closed_network


@pytest.fixture
def net():
    return ClosedNetwork(
        [
            Station("app.cpu", 0.03, servers=4),
            Station("db.cpu", 0.04, servers=4),
            Station("db.disk", 0.03),
        ],
        think_time=1.0,
    )


class TestConnectionPoolSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectionPool("p", 0, ["db.cpu"])
        with pytest.raises(ValueError):
            ConnectionPool("p", 5, [])


class TestPoolSimulation:
    def test_generous_pool_changes_nothing(self, net):
        pool = ConnectionPool("db", capacity=1000, stations=["db.cpu", "db.disk"])
        with_pool = simulate_closed_network(
            net, 20, duration=200.0, warmup=20.0, seed=1, pools=[pool]
        )
        without = simulate_closed_network(net, 20, duration=200.0, warmup=20.0, seed=1)
        assert with_pool.throughput == pytest.approx(without.throughput, rel=1e-9)
        assert with_pool.pool("db").mean_wait == 0.0

    def test_tight_pool_caps_throughput(self, net):
        # 2 DB connections serialize the DB tier: throughput is bounded by
        # 2 / (D_dbcpu + D_dbdisk) = 2 / 0.07 ~ 28.6/s regardless of the
        # hardware's higher capacity.
        pool = ConnectionPool("db", capacity=2, stations=["db.cpu", "db.disk"])
        sim = simulate_closed_network(
            net, 60, duration=300.0, warmup=30.0, seed=1, pools=[pool]
        )
        assert sim.throughput < 2 / 0.07 * 1.05
        unconstrained = simulate_closed_network(
            net, 60, duration=300.0, warmup=30.0, seed=1
        )
        assert sim.throughput < unconstrained.throughput * 0.95

    def test_pool_wait_recorded(self, net):
        pool = ConnectionPool("db", capacity=2, stations=["db.cpu", "db.disk"])
        sim = simulate_closed_network(
            net, 60, duration=300.0, warmup=30.0, seed=1, pools=[pool]
        )
        stats = sim.pool("db")
        assert stats.mean_wait > 0.0
        assert stats.max_waiting > 0
        assert stats.utilization > 0.9  # the pool itself is the bottleneck
        assert stats.acquisitions > 0

    def test_hardware_looks_idle_under_pool_limit(self, net):
        # The mis-tuned-pool signature: users wait, hardware does not.
        pool = ConnectionPool("db", capacity=1, stations=["db.cpu", "db.disk"])
        sim = simulate_closed_network(
            net, 40, duration=300.0, warmup=30.0, seed=2, pools=[pool]
        )
        assert sim.utilization_of("db.cpu") < 0.3
        # yet response time is far above the no-pool model's prediction
        mva = exact_multiserver_mva(net, 40)
        assert sim.response_time > 2 * mva.response_time[-1]

    def test_mva_overpredicts_with_untuned_pool(self, net):
        # The paper's scoping assumption quantified: hardware-only MVA
        # overpredicts throughput when a software limit binds.
        pool = ConnectionPool("db", capacity=2, stations=["db.cpu", "db.disk"])
        sim = simulate_closed_network(
            net, 60, duration=300.0, warmup=30.0, seed=1, pools=[pool]
        )
        mva = exact_multiserver_mva(net, 60)
        assert mva.throughput[-1] > sim.throughput * 1.2

    def test_pool_on_partial_tier(self, net):
        pool = ConnectionPool("db-cpu-only", capacity=3, stations=["db.cpu"])
        sim = simulate_closed_network(
            net, 30, duration=150.0, warmup=15.0, seed=3, pools=[pool]
        )
        assert sim.pool("db-cpu-only").acquisitions > 0

    def test_non_contiguous_pool_rejected(self, net):
        pool = ConnectionPool("weird", capacity=2, stations=["app.cpu", "db.disk"])
        with pytest.raises(ValueError, match="contiguous"):
            simulate_closed_network(net, 5, duration=50.0, pools=[pool])

    def test_unknown_pool_name_lookup(self, net):
        sim = simulate_closed_network(net, 5, duration=50.0, seed=0)
        with pytest.raises(KeyError):
            sim.pool("db")

    def test_fifo_fairness(self, net):
        # All cycles complete; nobody starves behind the pool.
        pool = ConnectionPool("db", capacity=1, stations=["db.cpu", "db.disk"])
        sim = simulate_closed_network(
            net, 10, duration=200.0, warmup=20.0, seed=4, pools=[pool]
        )
        # throughput consistent with Little's law within noise
        n_est = sim.throughput * sim.cycle_time
        assert n_est == pytest.approx(10, rel=0.15)
