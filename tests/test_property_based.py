"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis import mean_percent_deviation
from repro.core import (
    ClosedNetwork,
    Station,
    exact_multiserver_mva,
    exact_mva,
    mvasd,
)
from repro.core.convolution import convolution_mva
from repro.interpolate import (
    CubicSpline,
    ServiceDemandModel,
    chebyshev_nodes,
    solve_tridiagonal,
)

# -- strategies ----------------------------------------------------------------

demands_strategy = st.lists(
    st.floats(min_value=0.001, max_value=0.5), min_size=1, max_size=6
)
think_strategy = st.floats(min_value=0.0, max_value=5.0)


def _network(demands, think, servers=None):
    stations = [
        Station(f"s{i}", d, servers=(servers[i] if servers else 1))
        for i, d in enumerate(demands)
    ]
    return ClosedNetwork(stations, think_time=think)


# -- MVA invariants --------------------------------------------------------------


class TestMVAInvariants:
    @given(demands=demands_strategy, think=think_strategy)
    @settings(max_examples=40, deadline=None)
    def test_littles_law_always_holds(self, demands, think):
        r = exact_mva(_network(demands, think), 30)
        assert r.littles_law_residual().max() < 1e-9

    @given(demands=demands_strategy, think=think_strategy)
    @settings(max_examples=40, deadline=None)
    def test_throughput_monotone_and_bounded(self, demands, think):
        net = _network(demands, think)
        r = exact_mva(net, 30)
        assert np.all(np.diff(r.throughput) >= -1e-9)
        assert r.throughput.max() <= 1.0 / max(demands) + 1e-9

    @given(demands=demands_strategy, think=think_strategy)
    @settings(max_examples=40, deadline=None)
    def test_response_time_monotone(self, demands, think):
        r = exact_mva(_network(demands, think), 30)
        assert np.all(np.diff(r.response_time) >= -1e-9)

    @given(
        demands=demands_strategy,
        think=think_strategy,
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_convolution_equals_mva_single_server(self, demands, think, data):
        net = _network(demands, think)
        conv = convolution_mva(net, 20)
        ex = exact_mva(net, 20)
        np.testing.assert_allclose(conv.throughput, ex.throughput, rtol=1e-7)

    @given(
        demands=st.lists(st.floats(min_value=0.01, max_value=0.5), min_size=2, max_size=4),
        think=think_strategy,
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_multiserver_dominates_single_server(self, demands, think, data):
        servers = data.draw(
            st.lists(st.integers(2, 8), min_size=len(demands), max_size=len(demands))
        )
        ms_net = _network(demands, think, servers=servers)
        ss_net = _network(demands, think)
        ms = exact_multiserver_mva(ms_net, 25, station_detail=False)
        ss = exact_mva(ss_net, 25)
        # More servers can never reduce throughput.
        assert np.all(ms.throughput >= ss.throughput - 1e-9)

    @given(demands=demands_strategy, think=think_strategy)
    @settings(max_examples=25, deadline=None)
    def test_mvasd_with_constant_functions_matches_mva(self, demands, think):
        net = _network(demands, think)
        fns = [lambda n, _d=d: _d for d in demands]
        r3 = mvasd(net, 20, demand_functions=fns)
        r1 = exact_mva(net, 20)
        np.testing.assert_allclose(r3.throughput, r1.throughput, rtol=1e-7)


# -- spline invariants ------------------------------------------------------------


knot_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1000.0), min_size=2, max_size=12, unique=True
).map(sorted)


class TestSplineInvariants:
    @given(x=knot_strategy, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_interpolates_knots(self, x, data):
        y = data.draw(
            st.lists(
                st.floats(min_value=-100, max_value=100),
                min_size=len(x),
                max_size=len(x),
            )
        )
        # reject degenerate spacing that stresses conditioning unrealistically
        if np.any(np.diff(x) < 1e-6):
            return
        s = CubicSpline(np.array(x), np.array(y))
        np.testing.assert_allclose(s(np.array(x)), y, rtol=1e-6, atol=1e-6)

    @given(x=knot_strategy, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_clamped_extrapolation_constant(self, x, data):
        y = data.draw(
            st.lists(
                st.floats(min_value=-100, max_value=100),
                min_size=len(x),
                max_size=len(x),
            )
        )
        if np.any(np.diff(x) < 1e-6):
            return
        s = CubicSpline(np.array(x), np.array(y), extrapolation="clamp")
        assert s(x[0] - 10.0) == pytest.approx(y[0], rel=1e-9, abs=1e-9)
        assert s(x[-1] + 10.0) == pytest.approx(y[-1], rel=1e-9, abs=1e-9)

    @given(
        levels=st.lists(
            st.floats(min_value=1, max_value=500), min_size=1, max_size=8, unique=True
        ),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_demand_model_never_negative(self, levels, data):
        demands = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=len(levels),
                max_size=len(levels),
            )
        )
        if len(levels) > 1 and np.any(np.diff(sorted(levels)) < 1e-6):
            return
        m = ServiceDemandModel(levels, demands)
        q = np.linspace(0, 600, 101)
        assert np.all(m(q) >= 0)


# -- linear algebra / design helpers ------------------------------------------------


class TestSolverAndNodes:
    @given(
        n=st.integers(min_value=1, max_value=30),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_tridiagonal_residual_small(self, n, data):
        diag = np.array(
            data.draw(st.lists(st.floats(3.0, 6.0), min_size=n, max_size=n))
        )
        off = max(n - 1, 0)
        lower = np.array(data.draw(st.lists(st.floats(-1, 1), min_size=off, max_size=off)))
        upper = np.array(data.draw(st.lists(st.floats(-1, 1), min_size=off, max_size=off)))
        rhs = np.array(data.draw(st.lists(st.floats(-10, 10), min_size=n, max_size=n)))
        x = solve_tridiagonal(lower, diag, upper, rhs)
        # residual check without building the dense matrix
        res = diag * x
        if n > 1:
            res[1:] += lower * x[:-1]
            res[:-1] += upper * x[1:]
        np.testing.assert_allclose(res, rhs, rtol=1e-8, atol=1e-8)

    @given(
        n=st.integers(min_value=1, max_value=40),
        a=st.floats(min_value=-100, max_value=100),
        width=st.floats(min_value=0.1, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_chebyshev_nodes_sorted_in_open_interval(self, n, a, width):
        b = a + width
        nodes = chebyshev_nodes(n, a, b)
        assert np.all(nodes > a) and np.all(nodes < b)
        assert np.all(np.diff(nodes) > 0)


# -- metric invariants ---------------------------------------------------------------


class TestDeviationInvariants:
    @given(
        measured=st.lists(st.floats(0.1, 100), min_size=1, max_size=20),
        scale=st.floats(0.5, 2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_uniform_scaling_gives_constant_deviation(self, measured, scale):
        m = np.array(measured)
        dev = mean_percent_deviation(m * scale, m)
        assert dev == pytest.approx(abs(scale - 1) * 100, rel=1e-9, abs=1e-9)

    @given(measured=st.lists(st.floats(0.1, 100), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_zero_for_perfect_prediction(self, measured):
        m = np.array(measured)
        assert mean_percent_deviation(m, m) == 0.0
