"""Algorithm 1 — exact single-server MVA."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station, exact_mva


class TestExactMVA:
    def test_single_customer_sees_raw_demands(self, two_station_net):
        r = exact_mva(two_station_net, 1)
        assert r.response_time[0] == pytest.approx(0.13)
        assert r.throughput[0] == pytest.approx(1 / 1.13)

    def test_littles_law_holds_everywhere(self, two_station_net):
        r = exact_mva(two_station_net, 100)
        assert r.littles_law_residual().max() < 1e-12

    def test_throughput_monotone_nondecreasing(self, two_station_net):
        r = exact_mva(two_station_net, 100)
        assert np.all(np.diff(r.throughput) >= -1e-12)

    def test_throughput_respects_bottleneck_bound(self, two_station_net):
        r = exact_mva(two_station_net, 200)
        assert r.throughput.max() <= 1 / 0.08 + 1e-12

    def test_saturation_reached(self, two_station_net):
        r = exact_mva(two_station_net, 500)
        assert r.throughput[-1] == pytest.approx(1 / 0.08, rel=1e-3)

    def test_response_time_monotone(self, two_station_net):
        r = exact_mva(two_station_net, 100)
        assert np.all(np.diff(r.response_time) >= -1e-12)

    def test_balanced_network_closed_form(self):
        # K identical stations, no think time: X(n) = n / ((n + K - 1) D).
        k, d = 3, 0.2
        net = ClosedNetwork([Station(f"s{i}", d) for i in range(k)], think_time=0.0)
        r = exact_mva(net, 50)
        n = r.populations.astype(float)
        np.testing.assert_allclose(r.throughput, n / ((n + k - 1) * d), rtol=1e-12)

    def test_single_station_mm1_closed_form(self):
        # One queue + think time Z is the classical machine-repair model;
        # spot-check against n=2 hand computation.
        net = ClosedNetwork([Station("s", 0.5)], think_time=1.0)
        r = exact_mva(net, 2)
        # n=1: R=0.5, X=1/1.5; Q=0.5/1.5
        # n=2: R=0.5(1+1/3)=2/3, X=2/(1+2/3)=1.2, ...
        assert r.response_time[0] == pytest.approx(0.5)
        assert r.throughput[1] == pytest.approx(2 / (1 + 2 / 3))

    def test_demand_override(self, two_station_net):
        r = exact_mva(two_station_net, 10, demands=[0.5, 0.01])
        assert r.response_time[0] == pytest.approx(0.51)

    def test_demand_override_validation(self, two_station_net):
        with pytest.raises(ValueError, match="expected 2"):
            exact_mva(two_station_net, 10, demands=[0.5])
        with pytest.raises(ValueError, match="non-negative"):
            exact_mva(two_station_net, 10, demands=[-0.1, 0.1])

    def test_varying_network_frozen_at_level(self, varying_net):
        r1 = exact_mva(varying_net, 10, demand_level=1.0)
        r2 = exact_mva(varying_net, 10, demand_level=1000.0)
        # demand at level 1000 is smaller, so throughput must be higher
        assert r2.throughput[-1] > r1.throughput[-1]

    def test_delay_station_adds_constant_residence(self):
        net = ClosedNetwork(
            [Station("cpu", 0.1), Station("lag", 0.5, kind="delay")], think_time=0.0
        )
        r = exact_mva(net, 50)
        # residence at the delay station never grows with population
        lag_col = net.station_names.index("lag")
        np.testing.assert_allclose(r.residence_times[:, lag_col], 0.5)

    def test_zero_population_rejected(self, two_station_net):
        with pytest.raises(ValueError, match="max_population"):
            exact_mva(two_station_net, 0)

    def test_utilization_is_xd(self, two_station_net):
        r = exact_mva(two_station_net, 30)
        np.testing.assert_allclose(
            r.utilizations[:, 0], r.throughput * 0.05, rtol=1e-12
        )

    def test_demands_used_recorded(self, two_station_net):
        r = exact_mva(two_station_net, 5)
        assert r.demands_used.shape == (5, 2)
        np.testing.assert_allclose(r.demands_used, [[0.05, 0.08]] * 5)
