"""Batched multi-class kernels: scalar equivalence, NaN masking, routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClosedNetwork, Station, exact_multiclass_mva
from repro.core.multiclass_amva import multiclass_mvasd
from repro.engine import (
    FaultPlan,
    ScenarioFailure,
    batched_exact_multiclass,
    batched_multiclass_mvasd,
    faults,
)
from repro.solvers import Scenario, WorkloadClass, solve, solve_stack
from repro.solvers.facade import _SCALAR_FALLBACK_WARNED
from repro.solvers.validation import SolverInputError


@pytest.fixture
def net():
    return ClosedNetwork(
        [Station("web", demand=0.02), Station("db", demand=0.05)],
        think_time=1.0,
    )


def _stack(net, s=6):
    scales = np.linspace(0.8, 1.2, s)
    return [
        Scenario(
            net,
            5,
            classes=(
                WorkloadClass(
                    "a", 3, {"web": 0.02 * sc, "db": 0.05 * sc}, think_time=1.0
                ),
                WorkloadClass(
                    "b", 2, {"web": 0.01 * sc, "db": 0.04 * sc}, think_time=0.5
                ),
            ),
        )
        for sc in scales
    ]


class _Ramp:
    def __init__(self, base, slope):
        self.base = base
        self.slope = slope

    def __call__(self, total):
        return self.base * (1.0 + self.slope * total)


def _varying_stack(net, s=5):
    scales = np.linspace(0.9, 1.1, s)
    return [
        Scenario(
            net,
            6,
            classes=(
                WorkloadClass(
                    "a",
                    3,
                    {"web": _Ramp(0.02 * sc, 0.01), "db": 0.05 * sc},
                    think_time=1.0,
                ),
                WorkloadClass(
                    "b", 3, {"web": 0.01 * sc, "db": 0.04 * sc}, think_time=0.5
                ),
            ),
        )
        for sc in scales
    ]


# A compact strategy for (K, C) demand tensors with populations/thinks.
_dims = st.tuples(st.integers(1, 3), st.integers(1, 3))


@st.composite
def _multiclass_case(draw):
    k, c = draw(_dims)
    demands = draw(
        st.lists(
            st.lists(st.floats(0.001, 0.2), min_size=c, max_size=c),
            min_size=k,
            max_size=k,
        )
    )
    pops = draw(st.lists(st.integers(0, 4), min_size=c, max_size=c))
    think = draw(st.lists(st.floats(0.0, 2.0), min_size=c, max_size=c))
    kinds = draw(
        st.lists(st.sampled_from(["queue", "delay"]), min_size=k, max_size=k)
    )
    return demands, pops, think, kinds


class TestBatchedExactMulticlassEquivalence:
    @given(case=_multiclass_case(), s=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_rowwise(self, case, s):
        demands, pops, think, kinds = case
        base = np.asarray(demands, dtype=float)
        stack = np.stack([base * (1.0 + 0.05 * i) for i in range(s)])
        batched = batched_exact_multiclass(
            stack, pops, think, station_kinds=kinds
        )
        for i in range(s):
            scalar = exact_multiclass_mva(
                stack[i], pops, think, station_kinds=kinds
            )
            np.testing.assert_allclose(
                batched.throughput[i], scalar.throughput, atol=1e-10
            )
            np.testing.assert_allclose(
                batched.queue_lengths[i], scalar.queue_lengths, atol=1e-10
            )
            np.testing.assert_allclose(
                batched.utilizations[i], scalar.utilizations, atol=1e-10
            )

    @given(case=_multiclass_case())
    @settings(max_examples=30, deadline=None)
    def test_scenario_accessor_round_trips(self, case):
        demands, pops, think, kinds = case
        base = np.asarray(demands, dtype=float)
        batched = batched_exact_multiclass(
            base[None, :, :], pops, think, station_kinds=kinds
        )
        single = batched.scenario(0)
        scalar = exact_multiclass_mva(base, pops, think, station_kinds=kinds)
        np.testing.assert_allclose(single.throughput, scalar.throughput, atol=1e-12)


class TestBatchedMulticlassMvasdEquivalence:
    @given(
        s=st.integers(1, 3),
        total=st.integers(1, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_rowwise(self, s, total, seed):
        rng = np.random.default_rng(seed)
        k, c = 2, 2
        names = ("web", "db")
        cls = ("a", "b")
        tensors = rng.uniform(0.005, 0.1, size=(s, total, k, c))
        mix = [2.0, 1.0]
        think = [1.0, 0.5]
        batched = batched_multiclass_mvasd(
            names, cls, tensors, mix, total, think
        )
        for i in range(s):
            per_total = tensors[i]

            def curve(ti, ki, ci):
                return lambda n: float(per_total[int(round(n)) - 1, ki, ci])

            scalar = multiclass_mvasd(
                names,
                {
                    cl: {
                        stn: curve(i, ki, ci)
                        for ki, stn in enumerate(names)
                    }
                    for ci, cl in enumerate(cls)
                },
                {"a": 2.0, "b": 1.0},
                total,
                {"a": 1.0, "b": 0.5},
            )
            np.testing.assert_allclose(
                batched.throughput[i], scalar.throughput, atol=1e-10
            )
            np.testing.assert_allclose(
                batched.response_time[i], scalar.response_time, atol=1e-10
            )
        np.testing.assert_array_equal(batched.populations, scalar.populations)


class TestNaNMasking:
    def test_masked_rows_nan_survivors_bit_identical(self):
        base = np.array([[0.02, 0.01], [0.05, 0.04]])
        stack = np.stack([base * (1.0 + 0.1 * i) for i in range(4)])
        poisoned = stack.copy()
        poisoned[2] = np.nan
        mask = np.array([True, True, False, True])
        clean = batched_exact_multiclass(stack, [3, 2], [1.0, 0.5])
        masked = batched_exact_multiclass(poisoned, [3, 2], [1.0, 0.5], mask=mask)
        assert np.isnan(masked.throughput[2]).all()
        assert np.isnan(masked.queue_lengths[2]).all()
        survivors = [0, 1, 3]
        np.testing.assert_array_equal(
            masked.throughput[survivors], clean.throughput[survivors]
        )
        np.testing.assert_array_equal(
            masked.queue_lengths_by_class[survivors],
            clean.queue_lengths_by_class[survivors],
        )

    def test_unmasked_nan_still_rejected(self):
        stack = np.full((2, 2, 2), np.nan)
        with pytest.raises(ValueError, match="finite"):
            batched_exact_multiclass(stack, [1, 1], [1.0, 1.0])

    def test_mvasd_mask(self):
        rng = np.random.default_rng(7)
        tensors = rng.uniform(0.01, 0.08, size=(3, 4, 2, 2))
        poisoned = tensors.copy()
        poisoned[1] = -1.0
        mask = np.array([True, False, True])
        clean = batched_multiclass_mvasd(
            ("web", "db"), ("a", "b"), tensors, [1.0, 1.0], 4, [1.0, 0.5]
        )
        masked = batched_multiclass_mvasd(
            ("web", "db"), ("a", "b"), poisoned, [1.0, 1.0], 4, [1.0, 0.5],
            mask=mask,
        )
        assert np.isnan(masked.throughput[1]).all()
        np.testing.assert_array_equal(
            masked.throughput[[0, 2]], clean.throughput[[0, 2]]
        )


class TestFacadeRouting:
    def test_auto_routes_batched_not_stacked(self, net):
        result = solve_stack(_stack(net), cache=None)
        assert result.backend == "batched"
        assert result.solver == "batched-exact-multiclass"

    def test_serial_batched_sharded_parity(self, net):
        stack = _stack(net)
        serial = solve_stack(
            stack, method="exact-multiclass", backend="serial", cache=None
        )
        batched = solve_stack(
            stack, method="exact-multiclass", backend="batched", cache=None
        )
        sharded = solve_stack(
            stack,
            method="exact-multiclass",
            backend="process-sharded",
            workers=2,
            cache=None,
        )
        assert serial.solver == "stacked-exact-multiclass"
        np.testing.assert_allclose(
            batched.throughput, serial.throughput, atol=1e-10
        )
        np.testing.assert_allclose(
            sharded.throughput, serial.throughput, atol=1e-10
        )
        assert sharded.backend == "process-sharded"

    def test_varying_stack_routes_through_mvasd_kernel(self, net):
        stack = _varying_stack(net)
        auto = solve_stack(stack, cache=None)
        assert auto.solver == "batched-multiclass-mvasd"
        serial = solve_stack(stack, backend="serial", method="multiclass-mvasd", cache=None)
        np.testing.assert_allclose(auto.throughput, serial.throughput, atol=1e-10)

    def test_scenario_accessor_matches_single_solve(self, net):
        stack = _stack(net)
        batched = solve_stack(stack, cache=None)
        single = solve(stack[2], method="exact-multiclass", cache=None)
        np.testing.assert_allclose(
            batched.scenario(2).throughput, single.throughput, atol=1e-12
        )

    def test_mixed_single_and_multiclass_rejected(self, net):
        with pytest.raises(SolverInputError, match="mix"):
            solve_stack([_stack(net)[0], Scenario(net, 5)], cache=None)

    def test_differing_class_structure_rejected(self, net):
        a = _stack(net)[0]
        b = Scenario(
            net,
            5,
            classes=(
                WorkloadClass("a", 4, {"web": 0.02, "db": 0.05}, think_time=1.0),
                WorkloadClass("b", 1, {"web": 0.01, "db": 0.04}, think_time=0.5),
            ),
        )
        with pytest.raises(SolverInputError, match="class structure"):
            solve_stack([a, b], cache=None)

    def test_single_class_solver_rejected_for_multiclass_stack(self, net):
        with pytest.raises(Exception, match="single-class"):
            solve_stack(_stack(net), method="exact-mva", cache=None)


class TestMaskedIsolation:
    def test_poisoned_scenario_does_not_demote_shard(self, net):
        stack = _stack(net)
        clean = solve_stack(
            stack, method="exact-multiclass", backend="batched", cache=None
        )
        with faults.injected(FaultPlan.parse("raise-in-kernel@scenario=3")):
            result = solve_stack(
                stack,
                method="exact-multiclass",
                backend="batched",
                cache=None,
                errors="isolate",
            )
        # Survivors stayed on the kernel — backend metadata proves it.
        assert result.backend == "batched"
        assert result.failed_indices == (3,)
        failure = result.failures[0]
        assert isinstance(failure, ScenarioFailure)
        assert "InjectedFault" in failure.error
        assert np.isnan(result.throughput[3]).all()
        survivors = [i for i in range(len(stack)) if i != 3]
        np.testing.assert_array_equal(
            result.throughput[survivors], clean.throughput[survivors]
        )

    def test_single_class_masked_isolation_too(self, net):
        # The PR 5 residual: single-class kernels also keep survivors
        # batched now instead of demoting the shard to the serial loop.
        stack = [Scenario(net, 10, think_time=0.5 + 0.1 * i) for i in range(5)]
        clean = solve_stack(stack, method="exact-mva", backend="batched", cache=None)
        with faults.injected(FaultPlan.parse("raise-in-kernel@scenario=1")):
            result = solve_stack(
                stack,
                method="exact-mva",
                backend="batched",
                cache=None,
                errors="isolate",
            )
        assert result.backend == "batched"
        assert result.failed_indices == (1,)
        assert np.isnan(result.throughput[1]).all()
        survivors = [0, 2, 3, 4]
        np.testing.assert_array_equal(
            result.throughput[survivors], clean.throughput[survivors]
        )


class TestScalarFallbackWarning:
    def test_kernel_less_stack_warns_once(self, net):
        _SCALAR_FALLBACK_WARNED.discard("method-of-moments")
        stack = _stack(net)
        with pytest.warns(UserWarning, match="no batched kernel"):
            solve_stack(stack, method="method-of-moments", cache=None)
        # Second stack with the same method stays quiet.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            solve_stack(stack, method="method-of-moments", cache=None)
