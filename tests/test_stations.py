"""Simulated station state machines."""

import pytest

from repro.simulation import SimDelay, SimQueue


class TestSimQueue:
    def test_immediate_service_when_free(self):
        q = SimQueue("cpu", servers=2)
        assert q.arrive(0.0, "a") is True
        assert q.arrive(0.0, "b") is True
        assert q.busy == 2

    def test_queues_when_full(self):
        q = SimQueue("cpu", servers=1)
        q.arrive(0.0, "a")
        assert q.arrive(0.0, "b") is False
        assert q.jobs_present == 2

    def test_depart_hands_server_to_waiter(self):
        q = SimQueue("cpu", servers=1)
        q.arrive(0.0, "a")
        q.arrive(0.0, "b")
        nxt = q.depart(1.0)
        assert nxt == "b"
        assert q.busy == 1  # still busy, serving b

    def test_depart_frees_server_when_idle_queue(self):
        q = SimQueue("cpu", servers=1)
        q.arrive(0.0, "a")
        assert q.depart(1.0) is None
        assert q.busy == 0

    def test_fifo_order(self):
        q = SimQueue("cpu", servers=1)
        q.arrive(0.0, "a")
        for c in ("b", "c", "d"):
            q.arrive(0.0, c)
        assert q.depart(1.0) == "b"
        assert q.depart(2.0) == "c"
        assert q.depart(3.0) == "d"

    def test_utilization_integral(self):
        q = SimQueue("cpu", servers=2)
        q.arrive(0.0, "a")          # 1 busy on [0, 4]
        q.arrive(2.0, "b")          # 2 busy on [2, 4]
        q.depart(4.0)
        q.depart(4.0)
        # busy-server area = 1*2 + 2*2 = 6 over 4s with 2 servers -> 0.75
        assert q.utilization(4.0) == pytest.approx(0.75)

    def test_mean_jobs_integral(self):
        q = SimQueue("cpu", servers=1)
        q.arrive(0.0, "a")
        q.arrive(0.0, "b")          # 2 jobs on [0, 2]
        q.depart(2.0)               # 1 job on [2, 4]
        q.depart(4.0)
        assert q.mean_jobs(4.0) == pytest.approx(1.5)

    def test_throughput(self):
        q = SimQueue("cpu", servers=1)
        for t in (0.0, 1.0, 2.0):
            q.arrive(t, t)
        q.depart(1.0), q.depart(2.0), q.depart(3.0)
        assert q.throughput(10.0) == pytest.approx(0.3)

    def test_reset_statistics(self):
        q = SimQueue("cpu", servers=1)
        q.arrive(0.0, "a")
        q.depart(5.0)
        q.reset_statistics(5.0)
        assert q.completions == 0
        assert q.utilization(10.0) == pytest.approx(0.0)

    def test_depart_on_idle_raises(self):
        with pytest.raises(RuntimeError, match="no busy server"):
            SimQueue("cpu").depart(1.0)

    def test_invalid_servers(self):
        with pytest.raises(ValueError):
            SimQueue("cpu", servers=0)


class TestSimDelay:
    def test_population_tracking(self):
        d = SimDelay("think")
        d.arrive(0.0)
        d.arrive(0.0)        # 2 present on [0, 3]
        d.depart(3.0)        # 1 present on [3, 6]
        assert d.mean_population(6.0) == pytest.approx(1.5)

    def test_completions(self):
        d = SimDelay("think")
        d.arrive(0.0)
        d.depart(1.0)
        assert d.completions == 1

    def test_depart_empty_raises(self):
        with pytest.raises(RuntimeError):
            SimDelay("think").depart(1.0)

    def test_reset(self):
        d = SimDelay("think")
        d.arrive(0.0)
        d.depart(2.0)
        d.reset_statistics(2.0)
        assert d.completions == 0
        assert d.mean_population(4.0) == pytest.approx(0.0)
