"""Execution-backend parity: serial, batched and process-sharded agree.

The PR-4 acceptance bar: for every registered method with a batched
kernel, the `process-sharded` stack result and the cached-hit result
match the serial/batched paths to ≤1e-10; methods without a kernel
shard over their serial loop just as faithfully.
"""

import numpy as np
import pytest

from repro.core.network import ClosedNetwork, Station
from repro.engine import get_backend
from repro.solvers import (
    Scenario,
    SolverCache,
    SolverCapabilityError,
    list_solvers,
    solve,
    solve_stack,
)

ATOL = 1e-10


@pytest.fixture
def single_server_net():
    return ClosedNetwork(
        [Station("web", demand=0.02), Station("db", demand=0.05)], think_time=1.0
    )


@pytest.fixture
def multiserver_net():
    return ClosedNetwork(
        [Station("web", demand=0.08, servers=4), Station("db", demand=0.05)],
        think_time=1.0,
    )


@pytest.fixture
def varying_net():
    return ClosedNetwork(
        [
            Station("web", demand=lambda n: 0.05 + 0.0005 * n, servers=4),
            Station("db", demand=lambda n: 0.03 + 0.0002 * n),
        ],
        think_time=1.0,
    )


def _stack_for(spec, net):
    """A small stack exercising ``spec`` on ``net``'s topology."""
    return [
        Scenario(net, 15, demand_matrix=None, demand_level=1.0, think_time=z)
        for z in (0.5, 1.0, 1.5, 2.0, 2.5)
    ]


# Single-class kernel methods; the multi-class kernels have their own
# parity suite in tests/test_multiclass_batched.py (different fixtures).
BATCHED_METHODS = [
    s.name for s in list_solvers() if s.batched_kernel and not s.multiclass
]


class TestParityAcrossBackends:
    @pytest.mark.parametrize("method", BATCHED_METHODS)
    def test_every_kernel_method_serial_batched_sharded(
        self, method, single_server_net, multiserver_net, varying_net
    ):
        spec = next(s for s in list_solvers() if s.name == method)
        net = varying_net if spec.varying_demands else (
            multiserver_net if spec.multiserver else single_server_net
        )
        stack = _stack_for(spec, net)
        serial = solve_stack(stack, method=method, backend="serial", cache=None)
        batched = solve_stack(stack, method=method, backend="batched", cache=None)
        sharded = solve_stack(
            stack, method=method, backend="process-sharded", workers=2, cache=None
        )
        for other in (batched, sharded):
            np.testing.assert_allclose(serial.throughput, other.throughput, atol=ATOL)
            np.testing.assert_allclose(
                serial.response_time, other.response_time, atol=ATOL
            )
            np.testing.assert_allclose(
                serial.queue_lengths, other.queue_lengths, atol=ATOL
            )
            np.testing.assert_allclose(
                serial.utilizations, other.utilizations, atol=ATOL
            )
        assert serial.backend == "serial"
        assert batched.backend == "batched"
        assert sharded.backend == "process-sharded"

    @pytest.mark.parametrize("method", BATCHED_METHODS)
    def test_cached_hit_matches_fresh(self, method, single_server_net, multiserver_net,
                                      varying_net):
        spec = next(s for s in list_solvers() if s.name == method)
        net = varying_net if spec.varying_demands else (
            multiserver_net if spec.multiserver else single_server_net
        )
        stack = _stack_for(spec, net)
        cache = SolverCache()
        cold = solve_stack(stack, method=method, cache=cache)
        warm = solve_stack(list(stack), method=method, cache=cache)
        fresh = solve_stack(list(stack), method=method, cache=None)
        assert warm is cold
        assert cache.stats().hits == 1
        np.testing.assert_allclose(warm.throughput, fresh.throughput, atol=ATOL)
        np.testing.assert_allclose(warm.response_time, fresh.response_time, atol=ATOL)

    def test_kernel_less_method_shards_over_serial_loop(self, single_server_net):
        stack = [
            Scenario(single_server_net, 12, think_time=z) for z in (0.5, 1.0, 1.5)
        ]
        serial = solve_stack(stack, method="linearizer", backend="serial", cache=None)
        sharded = solve_stack(
            stack, method="linearizer", backend="process-sharded", workers=2, cache=None
        )
        np.testing.assert_allclose(serial.throughput, sharded.throughput, atol=ATOL)
        assert sharded.backend == "process-sharded"
        assert sharded.solver == serial.solver == "stacked-linearizer-amva"

    def test_sharding_lambda_demand_networks(self, varying_net):
        # Lambda demands are unpicklable, but the scenario list rides to
        # the forked workers as payload — only chunk bounds are pickled.
        stack = [Scenario(varying_net, 20, think_time=z) for z in (0.5, 1.0, 2.0)]
        batched = solve_stack(stack, method="mvasd", backend="batched", cache=None)
        sharded = solve_stack(
            stack, method="mvasd", backend="process-sharded", workers=2, cache=None
        )
        np.testing.assert_allclose(batched.throughput, sharded.throughput, atol=ATOL)


class TestBackendSelection:
    def test_auto_prefers_batched_below_threshold(self, single_server_net):
        stack = [Scenario(single_server_net, 10, think_time=z) for z in (0.5, 1.0)]
        result = solve_stack(stack, method="exact-mva", cache=None)
        assert result.backend == "batched"

    def test_auto_shards_above_threshold(self, single_server_net, monkeypatch):
        from repro.solvers import facade

        monkeypatch.setattr(facade, "AUTO_SHARD_THRESHOLD", 4)
        stack = [
            Scenario(single_server_net, 10, think_time=0.5 + 0.1 * i) for i in range(6)
        ]
        result = solve_stack(stack, method="exact-mva", workers=2, cache=None)
        assert result.backend == "process-sharded"
        reference = solve_stack(stack, method="exact-mva", backend="batched", cache=None)
        np.testing.assert_allclose(result.throughput, reference.throughput, atol=ATOL)

    def test_auto_stays_in_process_with_one_worker(self, single_server_net, monkeypatch):
        from repro.solvers import facade

        monkeypatch.setattr(facade, "AUTO_SHARD_THRESHOLD", 2)
        stack = [
            Scenario(single_server_net, 10, think_time=0.5 + 0.1 * i) for i in range(4)
        ]
        result = solve_stack(stack, method="exact-mva", workers=1, cache=None)
        assert result.backend == "batched"

    def test_scalar_alias_maps_to_serial(self, single_server_net):
        stack = [Scenario(single_server_net, 10, think_time=z) for z in (0.5, 1.0)]
        result = solve_stack(stack, method="exact-mva", backend="scalar", cache=None)
        assert result.backend == "serial"

    def test_unknown_backend_rejected(self, single_server_net):
        stack = [Scenario(single_server_net, 10)]
        with pytest.raises(Exception, match="backend"):
            solve_stack(stack, backend="gpu", cache=None)

    def test_batched_without_kernel_names_nearest_method(self, single_server_net):
        stack = [Scenario(single_server_net, 10), Scenario(single_server_net, 10)]
        with pytest.raises(SolverCapabilityError, match="no batched kernel") as exc:
            solve_stack(stack, method="linearizer", backend="batched", cache=None)
        assert "schweitzer-amva" in str(exc.value)

    def test_get_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("quantum")

    def test_single_scenario_rejects_sharded(self, single_server_net):
        with pytest.raises(Exception, match="backend"):
            solve(Scenario(single_server_net, 10), backend="process-sharded")


class TestShardReassembly:
    def test_more_workers_than_scenarios(self, single_server_net):
        stack = [Scenario(single_server_net, 10, think_time=z) for z in (0.5, 1.0)]
        sharded = solve_stack(
            stack, method="exact-mva", backend="process-sharded", workers=8, cache=None
        )
        reference = solve_stack(stack, method="exact-mva", backend="batched", cache=None)
        assert sharded.n_scenarios == 2
        np.testing.assert_allclose(sharded.throughput, reference.throughput, atol=ATOL)

    def test_order_preserved_across_shards(self, single_server_net):
        thinks = [0.25 * (i + 1) for i in range(9)]
        stack = [Scenario(single_server_net, 10, think_time=z) for z in thinks]
        sharded = solve_stack(
            stack, method="exact-mva", backend="process-sharded", workers=3, cache=None
        )
        np.testing.assert_allclose(sharded.think_times, thinks, atol=ATOL)
        # Throughput decreases as think time grows — order must survive.
        peak = sharded.peak_throughput()
        assert np.all(np.diff(peak) < 0)

    def test_demands_used_concatenated(self, varying_net):
        stack = [Scenario(varying_net, 12, think_time=z) for z in (0.5, 1.0, 1.5)]
        sharded = solve_stack(
            stack, method="mvasd", backend="process-sharded", workers=2, cache=None
        )
        batched = solve_stack(stack, method="mvasd", backend="batched", cache=None)
        assert sharded.demands_used is not None
        np.testing.assert_allclose(
            sharded.demands_used, batched.demands_used, atol=ATOL
        )


class TestCapabilityMatrix:
    def test_batched_kernel_column(self, capsys):
        from repro.cli import main

        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "batched kernel" in out

    def test_sweep_grid_reports_backend(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep-grid",
                "--demands", "0.02,0.05",
                "--think", "1",
                "--population", "30",
                "--scales", "0.5,1.0",
                "--backend", "process-sharded",
                "--workers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenarios solved in one batch" in out
        assert "[process-sharded]" in out
