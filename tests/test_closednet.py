"""Closed-network DES — including agreement with exact theory."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station, exact_multiserver_mva, exact_mva
from repro.simulation import simulate_closed_network


class TestMechanics:
    def test_result_shapes(self, two_station_net):
        sim = simulate_closed_network(two_station_net, 5, duration=50.0, seed=0)
        assert sim.utilizations.shape == (2,)
        assert sim.station_names == ("cpu", "disk")
        assert sim.cycles_completed == len(sim.completion_times[sim.completion_times >= 0])

    def test_deterministic_given_seed(self, two_station_net):
        a = simulate_closed_network(two_station_net, 5, duration=50.0, seed=3)
        b = simulate_closed_network(two_station_net, 5, duration=50.0, seed=3)
        assert a.throughput == b.throughput
        np.testing.assert_array_equal(a.completion_times, b.completion_times)

    def test_different_seeds_differ(self, two_station_net):
        a = simulate_closed_network(two_station_net, 5, duration=50.0, seed=3)
        b = simulate_closed_network(two_station_net, 5, duration=50.0, seed=4)
        assert a.throughput != b.throughput

    def test_warmup_discards_stats(self, two_station_net):
        sim = simulate_closed_network(two_station_net, 5, duration=60.0, warmup=20.0, seed=0)
        in_window = sim.completion_times >= 20.0
        assert sim.cycles_completed == int(in_window.sum())

    def test_cycle_time_is_response_plus_think(self, two_station_net):
        sim = simulate_closed_network(two_station_net, 5, duration=50.0, seed=0)
        assert sim.cycle_time == pytest.approx(sim.response_time + 1.0)

    def test_start_times_delay_ramp(self, two_station_net):
        eager = simulate_closed_network(two_station_net, 4, duration=40.0, seed=0)
        staggered = simulate_closed_network(
            two_station_net, 4, duration=40.0, seed=0, start_times=[0, 10, 20, 30]
        )
        assert staggered.cycles_completed < eager.cycles_completed

    def test_zero_demand_station_skipped(self):
        net = ClosedNetwork(
            [Station("cpu", 0.05), Station("ghost", 0.0)], think_time=0.5
        )
        sim = simulate_closed_network(net, 3, duration=40.0, seed=0)
        assert sim.utilizations[1] == 0.0
        assert sim.throughput > 0

    def test_delay_station_folds_into_think(self):
        base = ClosedNetwork([Station("cpu", 0.05)], think_time=1.0)
        lagged = ClosedNetwork(
            [Station("cpu", 0.05), Station("lag", 0.5, kind="delay")], think_time=0.5
        )
        a = simulate_closed_network(base, 6, duration=80.0, seed=1)
        b = simulate_closed_network(lagged, 6, duration=80.0, seed=1)
        # identical total delay -> statistically identical throughput
        assert b.throughput == pytest.approx(a.throughput, rel=0.1)

    def test_validation(self, two_station_net):
        with pytest.raises(ValueError, match="population"):
            simulate_closed_network(two_station_net, 0, duration=10.0)
        with pytest.raises(ValueError, match="duration"):
            simulate_closed_network(two_station_net, 1, duration=0.0)
        with pytest.raises(ValueError, match="warmup"):
            simulate_closed_network(two_station_net, 1, duration=10.0, warmup=10.0)
        with pytest.raises(ValueError, match="start_times"):
            simulate_closed_network(two_station_net, 2, duration=10.0, start_times=[0.0])

    def test_windowed_series(self, two_station_net):
        sim = simulate_closed_network(two_station_net, 5, duration=60.0, seed=0)
        w = sim.windowed_series(10.0)
        assert len(w["time"]) == len(w["throughput"]) == len(w["response_time"])
        # total completions reconstructable from windows
        assert w["throughput"].sum() * 10.0 == pytest.approx(len(sim.completion_times), abs=1)

    def test_demand_estimates_roundtrip(self, two_station_net):
        sim = simulate_closed_network(two_station_net, 8, duration=200.0, warmup=20.0, seed=0)
        est = sim.demand_estimates([1, 1])
        assert est["cpu"] == pytest.approx(0.05, rel=0.1)
        assert est["disk"] == pytest.approx(0.08, rel=0.1)


class TestAgreementWithTheory:
    """Product-form networks: DES must match exact MVA (solver validation)."""

    def test_single_server_network(self, two_station_net):
        mva = exact_mva(two_station_net, 10)
        xs = [
            simulate_closed_network(two_station_net, 10, duration=300.0, warmup=30.0, seed=s).throughput
            for s in (1, 2, 3)
        ]
        assert np.mean(xs) == pytest.approx(mva.throughput[-1], rel=0.03)

    def test_multiserver_network(self, multiserver_net):
        mva = exact_multiserver_mva(multiserver_net, 25)
        xs = [
            simulate_closed_network(multiserver_net, 25, duration=300.0, warmup=30.0, seed=s).throughput
            for s in (1, 2, 3)
        ]
        assert np.mean(xs) == pytest.approx(mva.throughput[-1], rel=0.03)

    def test_utilization_matches(self, multiserver_net):
        mva = exact_multiserver_mva(multiserver_net, 20)
        sim = simulate_closed_network(multiserver_net, 20, duration=400.0, warmup=40.0, seed=2)
        np.testing.assert_allclose(sim.utilizations, mva.utilizations[-1], rtol=0.05)

    def test_varying_demand_evaluated_at_population(self, varying_net):
        # The DES must use demand(N), not demand(1).
        sim = simulate_closed_network(varying_net, 100, duration=300.0, warmup=30.0, seed=1)
        d_at_100 = varying_net.demands_at(100)
        frozen = varying_net.with_demands(list(d_at_100))
        mva = exact_multiserver_mva(frozen, 100)
        assert sim.throughput == pytest.approx(mva.throughput[-1], rel=0.04)
