"""Interval MVA prediction bands."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClosedNetwork, Station, exact_multiserver_mva, exact_mva
from repro.core.interval_mva import band_from_estimates, interval_mva
from repro.loadtest.inference import DemandEstimate


@pytest.fixture
def net():
    return ClosedNetwork(
        [Station("cpu", 0.05, servers=2), Station("disk", 0.08)], think_time=1.0
    )


class TestMonotonicity:
    """The theoretical basis: MVA is monotone in every demand."""

    @given(
        data=st.data(),
        k=st.integers(2, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_increasing_one_demand_decreases_throughput(self, data, k):
        demands = data.draw(
            st.lists(st.floats(0.02, 0.3), min_size=k, max_size=k)
        )
        bump_idx = data.draw(st.integers(0, k - 1))
        bump = data.draw(st.floats(0.01, 0.2))
        net = ClosedNetwork(
            [Station(f"s{i}", d) for i, d in enumerate(demands)], think_time=1.0
        )
        base = exact_mva(net, 25)
        bumped_demands = list(demands)
        bumped_demands[bump_idx] += bump
        bumped = exact_mva(net, 25, demands=bumped_demands)
        assert np.all(bumped.throughput <= base.throughput + 1e-12)
        assert np.all(bumped.cycle_time >= base.cycle_time - 1e-12)


class TestIntervalMVA:
    def test_degenerate_intervals_collapse_band(self, net):
        band = interval_mva(net, 40, {"cpu": (0.05, 0.05), "disk": (0.08, 0.08)})
        np.testing.assert_allclose(band.throughput_low, band.throughput_high, rtol=1e-12)
        assert np.all(band.throughput_width() < 1e-12)

    def test_band_ordering(self, net):
        band = interval_mva(net, 40, {"cpu": (0.04, 0.06), "disk": (0.07, 0.09)})
        assert np.all(band.throughput_low <= band.throughput_high)
        assert np.all(band.cycle_time_low <= band.cycle_time_high)

    def test_interior_point_inside_band(self, net):
        band = interval_mva(net, 40, {"cpu": (0.04, 0.06), "disk": (0.07, 0.09)})
        mid = exact_multiserver_mva(net, 40, demands=[0.05, 0.08], station_detail=False)
        assert band.contains(mid)

    def test_random_interior_vectors_inside_band(self, net):
        rng = np.random.default_rng(0)
        band = interval_mva(net, 30, {"cpu": (0.04, 0.06), "disk": (0.07, 0.09)})
        for _ in range(10):
            d = [rng.uniform(0.04, 0.06), rng.uniform(0.07, 0.09)]
            r = exact_multiserver_mva(net, 30, demands=d, station_detail=False)
            assert band.contains(r)

    def test_unlisted_station_uses_point_demand(self, net):
        band = interval_mva(net, 20, {"disk": (0.07, 0.09)})
        assert band.throughput_high[0] == pytest.approx(
            exact_multiserver_mva(net, 1, demands=[0.05, 0.07]).throughput[0]
        )

    def test_at_accessor(self, net):
        band = interval_mva(net, 20, {"disk": (0.07, 0.09)})
        snap = band.at(10)
        assert snap["throughput"][0] <= snap["throughput"][1]
        with pytest.raises(KeyError):
            band.at(21)

    def test_validation(self, net):
        with pytest.raises(ValueError, match="invalid interval"):
            interval_mva(net, 10, {"cpu": (0.06, 0.04)})
        with pytest.raises(ValueError, match="invalid interval"):
            interval_mva(net, 10, {"cpu": (-0.01, 0.04)})
        with pytest.raises(ValueError):
            interval_mva(net, 0, {})


class TestBandFromEstimates:
    def _estimate(self, station, demand, stderr):
        return DemandEstimate(
            station=station,
            demand=demand,
            idle_util=0.0,
            stderr=stderr,
            r_squared=0.99,
            observations=20,
        )

    def test_wider_stderr_wider_band(self, net):
        tight = band_from_estimates(
            net,
            {
                "cpu": self._estimate("cpu", 0.05, 0.001),
                "disk": self._estimate("disk", 0.08, 0.001),
            },
            30,
        )
        loose = band_from_estimates(
            net,
            {
                "cpu": self._estimate("cpu", 0.05, 0.01),
                "disk": self._estimate("disk", 0.08, 0.01),
            },
            30,
        )
        assert loose.throughput_width().max() > tight.throughput_width().max()

    def test_negative_ci_clipped(self, net):
        band = band_from_estimates(
            net, {"cpu": self._estimate("cpu", 0.001, 0.01)}, 10
        )
        # optimistic corner uses demand 0 for cpu: X(1) = 1/(Z + 0 + 0.08)
        assert band.throughput_high[0] == pytest.approx(1 / 1.08, rel=1e-6)
