"""Fleet supervision: managed lifecycle, heartbeats, quarantine, chaos drill.

The robustness acceptance claims live here: a supervised fleet relaunches
SIGKILLed workers mid-sweep and the sweep still reassembles bit-identical
results; an unresponsive worker is quarantined behind its circuit breaker
and re-admitted through the half-open probe once it recovers; a draining
fleet finishes every in-flight request and exits 0; and the `repro fleet`
CLI drives the whole lifecycle from a state file.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.network import ClosedNetwork, Station
from repro.engine import (
    CircuitBreaker,
    FaultPlan,
    FleetSupervisor,
    RetryPolicy,
    faults,
)
from repro.engine.fabric import RemoteBackend
from repro.engine.supervisor import load_fleet_state, save_fleet_state
from repro.solvers import Scenario, solve_stack
from repro.solvers.registry import get_solver

ATOL = 1e-10


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.deactivate()


@pytest.fixture
def net():
    return ClosedNetwork(
        [Station("web", demand=0.02), Station("db", demand=0.05)], think_time=1.0
    )


@pytest.fixture
def stack(net):
    return [Scenario(net, 12, think_time=0.5 + 0.05 * i) for i in range(16)]


@pytest.fixture
def baseline(stack):
    return solve_stack(stack, method="exact-mva", backend="serial", cache=None)


def _fast_supervisor(workers=2, **kw):
    """A supervisor tuned for test latency, not production stability."""
    kw.setdefault("heartbeat_interval", 0.1)
    kw.setdefault("ping_timeout", 2.0)
    kw.setdefault(
        "relaunch_policy", RetryPolicy(max_retries=5, backoff_base=0.05, backoff_max=0.2)
    )
    kw.setdefault("breaker_threshold", 2)
    kw.setdefault("breaker_cooldown", 0.3)
    return FleetSupervisor(workers=workers, **kw)


def _wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _pid_gone(pid):
    try:
        # Reap first: an exited child of this test process is a zombie
        # that would still answer os.kill(pid, 0).
        if os.waitpid(pid, os.WNOHANG)[0] == pid:
            return True
    except (ChildProcessError, OSError):
        pass
    try:
        os.kill(pid, 0)
    except (OSError, ProcessLookupError):
        return True
    return False


# -- circuit breaker (pure units) ----------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(threshold=3, cooldown=2.0)
        assert b.record_failure(now=10.0) is False
        assert b.record_failure(now=11.0) is False
        assert b.state == "closed"
        assert b.record_failure(now=12.0) is True
        assert b.state == "open"
        assert not b.allows_probe(13.0)

    def test_success_resets_the_count(self):
        b = CircuitBreaker(threshold=2)
        b.record_failure(now=0.0)
        b.record_success()
        assert b.failures == 0
        b.record_failure(now=1.0)
        assert b.state == "closed"  # the streak restarted

    def test_half_open_probe_after_cooldown_then_close(self):
        b = CircuitBreaker(threshold=1, cooldown=2.0)
        assert b.record_failure(now=0.0) is True
        assert not b.allows_probe(1.9)
        assert b.allows_probe(2.1)  # transitions open -> half-open
        assert b.state == "half-open"
        b.record_success()
        assert b.state == "closed"
        assert b.allows_probe(2.2)

    def test_half_open_failure_reopens_with_doubled_cooldown(self):
        b = CircuitBreaker(threshold=1, cooldown=2.0, max_cooldown=5.0)
        b.record_failure(now=0.0)
        assert b.allows_probe(2.5)
        assert b.record_failure(now=2.5) is True  # re-opened
        assert b._current_cooldown == 4.0
        assert not b.allows_probe(6.0)
        assert b.allows_probe(6.6)
        b.record_failure(now=6.6)
        assert b._current_cooldown == 5.0  # capped at max_cooldown


# -- supervised lifecycle (real subprocesses) ----------------------------------


class TestFleetSupervisor:
    def test_launch_status_stop(self):
        with _fast_supervisor(2) as sup:
            assert len(sup.hosts()) == 2
            rows = sup.status()
            assert all(r["healthy"] and r["breaker"] == "closed" for r in rows)
            assert len({(r["host"], r["port"]) for r in rows}) == 2
            pids = [r["pid"] for r in rows]
        assert _wait_for(lambda: all(_pid_gone(p) for p in pids))

    def test_state_file_round_trip(self, tmp_path):
        path = str(tmp_path / "fleet.json")
        with _fast_supervisor(2) as sup:
            save_fleet_state(path, sup, cache_path="/tmp/cache.sqlite")
            state = load_fleet_state(path)
            assert state["cache_path"] == "/tmp/cache.sqlite"
            endpoints = {(w["host"], w["port"]) for w in state["workers"]}
            assert endpoints == set(sup.hosts())
        with pytest.raises(ValueError, match="fleet state"):
            (tmp_path / "junk.json").write_text("{}")
            load_fleet_state(str(tmp_path / "junk.json"))

    def test_chaos_kill_relaunches_and_sweep_stays_bit_identical(
        self, stack, baseline
    ):
        sup = _fast_supervisor(2).start()
        try:
            # slow-worker keeps shards in flight long enough for the
            # heartbeat's chaos kill to land mid-sweep
            plan = FaultPlan.parse(
                "kill-worker-process@shard=1;slow-worker@delay=0.1"
            )
            with faults.injected(plan):
                result = solve_stack(stack, method="exact-mva", cache=None, fleet=sup)
                assert _wait_for(lambda: sup.relaunches >= 1)
            kinds = [kind for kind, *_ in sup.events]
            assert "chaos-kill" in kinds
            assert "relaunch" in kinds
            np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)
            np.testing.assert_allclose(
                result.queue_lengths, baseline.queue_lengths, atol=ATOL
            )
            # the relaunched worker is live again on a fresh endpoint
            assert _wait_for(lambda: len(sup.hosts()) == 2)
        finally:
            sup.stop(graceful=False)

    def test_unresponsive_worker_quarantined_then_readmitted(self):
        sup = _fast_supervisor(1, ping_timeout=0.3).start()
        try:
            assert len(sup.hosts()) == 1
            pid = sup.status()[0]["pid"]
            os.kill(pid, signal.SIGSTOP)  # alive but unresponsive: no relaunch
            try:
                assert _wait_for(lambda: sup.quarantines >= 1)
                assert sup.status()[0]["healthy"] is False
                assert sup.hosts() == []  # quarantined hosts leave the membership
                assert sup.relaunches == 0
            finally:
                os.kill(pid, signal.SIGCONT)
            assert _wait_for(lambda: sup.readmissions >= 1)
            assert _wait_for(lambda: sup.status()[0]["healthy"])
            assert [kind for kind, *_ in sup.events].count("quarantine") >= 1
            assert sup.status()[0]["pid"] == pid  # same process all along
        finally:
            sup.stop(graceful=False)

    def test_drain_exits_all_workers_cleanly(self):
        sup = _fast_supervisor(2).start()
        pids = [r["pid"] for r in sup.status()]
        assert sup.drain(timeout=60.0) is True
        assert all(_pid_gone(p) for p in pids)
        sup.stop(graceful=False)  # idempotent after drain


# -- the chaos drill -----------------------------------------------------------


class TestChaosDrill:
    def test_drill(self, net):
        """The acceptance drill: 64-scenario sweep over a supervised fleet
        while one worker is SIGKILLed and one shard's admission is rejected;
        the sweep must still be bit-identical and the drain clean."""
        grid = [Scenario(net, 12, think_time=0.4 + 0.02 * i) for i in range(64)]
        serial = solve_stack(grid, method="exact-mva", backend="serial", cache=None)
        sup = _fast_supervisor(2).start()
        try:
            backend = RemoteBackend(membership=sup, reprobe_interval=0.1)
            plan = FaultPlan.parse(
                "kill-worker-process@shard=1;"
                "reject-admission@shard=0;"
                "slow-worker@delay=0.1"
            )
            with faults.injected(plan):
                result = backend.run(get_solver("exact-mva"), grid, {})
                assert _wait_for(lambda: sup.relaunches >= 1)
                fired = {(kind, point) for kind, point, *_ in faults.fired()}
            assert ("kill-worker-process", "fleet") in fired
            assert ("reject-admission", "admission") in fired
            assert backend.last_transport.overload_retries >= 1
            assert sup.relaunches >= 1
            np.testing.assert_allclose(result.throughput, serial.throughput, atol=ATOL)
            np.testing.assert_allclose(
                result.queue_lengths, serial.queue_lengths, atol=ATOL
            )
            assert not result.failures
            # graceful teardown: every worker finishes and exits 0
            assert sup.drain(timeout=60.0) is True
        finally:
            sup.stop(graceful=False)


# -- the fleet CLI -------------------------------------------------------------


class TestFleetCLI:
    def test_up_status_sweep_drain_round_trip(self, tmp_path, capsys):
        state = str(tmp_path / "fleet.json")
        assert cli_main(["fleet", "up", "--workers", "2", "--state", state]) == 0
        out = capsys.readouterr().out
        assert "2 worker(s) up" in out
        try:
            assert cli_main(["fleet", "status", "--state", state]) == 0
            assert "2/2" in capsys.readouterr().out

            rc = cli_main(
                [
                    "sweep-grid",
                    "--demands", "0.02,0.05",
                    "--population", "20",
                    "--scales", "0.8,1.0,1.2",
                    "--fleet", state,
                ]
            )
            assert rc == 0
            assert "[remote]" in capsys.readouterr().out
        finally:
            assert cli_main(["fleet", "drain", "--state", state]) == 0
            assert "cleanly" in capsys.readouterr().out
        assert not os.path.exists(state)

    def test_down_kills_unreachable_workers(self, tmp_path, capsys):
        state = str(tmp_path / "fleet.json")
        assert cli_main(["fleet", "up", "--workers", "1", "--state", state]) == 0
        capsys.readouterr()
        pid = load_fleet_state(state)["workers"][0]["pid"]
        assert cli_main(["fleet", "down", "--state", state]) == 0
        assert "stopped" in capsys.readouterr().out
        assert _wait_for(lambda: _pid_gone(pid))
        assert not os.path.exists(state)

    def test_ephemeral_fleet_sweep(self, capsys):
        rc = cli_main(
            [
                "sweep-grid",
                "--demands", "0.02,0.05",
                "--population", "20",
                "--scales", "0.9,1.0",
                "--fleet", "2",
            ]
        )
        assert rc == 0
        assert "[remote]" in capsys.readouterr().out
