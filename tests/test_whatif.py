"""What-if scenarios and SLA capacity planning."""

import numpy as np
import pytest

from repro.analysis.whatif import (
    SLA,
    Scenario,
    evaluate_scenarios,
    max_users_within_sla,
    outcomes_table,
)
from repro.core import ClosedNetwork, Station, mvasd


@pytest.fixture
def net():
    return ClosedNetwork(
        [Station("cpu", 0.08, servers=4), Station("disk", 0.05)], think_time=1.0
    )


@pytest.fixture
def fns():
    return {"cpu": lambda n: 0.08, "disk": lambda n: 0.05}


class TestSLA:
    def test_needs_a_bound(self):
        with pytest.raises(ValueError, match="at least one bound"):
            SLA()

    def test_positive_bounds(self):
        with pytest.raises(ValueError):
            SLA(max_cycle_time=-1.0)

    def test_mask_cycle_time(self, net, fns):
        result = mvasd(net, 100, demand_functions=fns)
        sla = SLA(max_cycle_time=2.0)
        mask = sla.satisfied_mask(result)
        assert mask[0]
        assert not mask[-1]

    def test_mask_utilization(self, net, fns):
        result = mvasd(net, 100, demand_functions=fns)
        sla = SLA(max_utilization=0.5)
        mask = sla.satisfied_mask(result)
        # utilization passes 50% well before N=100 (disk Xmax=20/s)
        assert mask[0] and not mask[-1]

    def test_describe(self):
        text = SLA(max_cycle_time=2.0, max_utilization=0.8).describe()
        assert "R+Z <= 2s" in text and "80%" in text


class TestMaxUsers:
    def test_contiguous_prefix(self, net, fns):
        result = mvasd(net, 100, demand_functions=fns)
        users = max_users_within_sla(result, SLA(max_cycle_time=2.0))
        # X_max = 1/0.05 = 20/s; R+Z = 2 at N ~ 40
        assert 30 <= users <= 50
        assert result.cycle_time[users - 1] <= 2.0
        assert result.cycle_time[users] > 2.0

    def test_zero_when_never_met(self, net, fns):
        result = mvasd(net, 10, demand_functions=fns)
        assert max_users_within_sla(result, SLA(max_cycle_time=0.01)) == 0

    def test_full_range_when_always_met(self, net, fns):
        result = mvasd(net, 10, demand_functions=fns)
        assert max_users_within_sla(result, SLA(max_cycle_time=100.0)) == 10


class TestScenario:
    def test_demand_scale(self, net, fns):
        scn = Scenario("fast-disk", demand_scale={"disk": 0.5})
        new_net, new_fns = scn.apply(net, fns)
        assert new_fns["disk"](1) == pytest.approx(0.025)
        assert new_fns["cpu"](1) == pytest.approx(0.08)

    def test_server_override(self, net, fns):
        scn = Scenario("more-cores", servers={"cpu": 8})
        new_net, _ = scn.apply(net, fns)
        assert new_net["cpu"].servers == 8
        assert net["cpu"].servers == 4  # original untouched

    def test_think_time_override(self, net, fns):
        scn = Scenario("impatient", think_time=0.2)
        new_net, _ = scn.apply(net, fns)
        assert new_net.think_time == 0.2

    def test_unknown_station_rejected(self, net, fns):
        with pytest.raises(KeyError, match="gpu"):
            Scenario("x", demand_scale={"gpu": 0.5}).apply(net, fns)

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario("x", demand_scale={"cpu": -1.0})
        with pytest.raises(ValueError):
            Scenario("x", servers={"cpu": 0})
        with pytest.raises(ValueError):
            Scenario("x", think_time=-1.0)


class TestEvaluateScenarios:
    def test_baseline_always_included(self, net, fns):
        out = evaluate_scenarios(net, fns, [], max_population=50)
        assert list(out) == ["baseline"]

    def test_upgrading_bottleneck_helps(self, net, fns):
        # disk (Xmax 20) is the bottleneck; cpu (4/0.08 = 50) is not.
        out = evaluate_scenarios(
            net,
            fns,
            [
                Scenario("fast-disk", demand_scale={"disk": 0.5}),
                Scenario("more-cores", servers={"cpu": 8}),
            ],
            max_population=200,
            sla=SLA(max_cycle_time=3.0),
        )
        base = out["baseline"]
        assert out["fast-disk"].peak_throughput > base.peak_throughput * 1.5
        assert out["more-cores"].peak_throughput == pytest.approx(
            base.peak_throughput, rel=0.02
        )
        assert out["fast-disk"].max_users > base.max_users

    def test_sla_met_at(self, net, fns):
        out = evaluate_scenarios(
            net, fns, [], max_population=100, sla=SLA(max_cycle_time=2.0)
        )
        base = out["baseline"]
        assert base.sla_met_at(10)
        assert not base.sla_met_at(100)

    def test_outcomes_table_renders(self, net, fns):
        out = evaluate_scenarios(
            net,
            fns,
            [Scenario("fast-disk", demand_scale={"disk": 0.5})],
            max_population=60,
            sla=SLA(max_cycle_time=2.0),
        )
        text = outcomes_table(out)
        assert "baseline" in text and "fast-disk" in text
        assert "max users in SLA" in text


class TestParallelEvaluation:
    def test_workers_match_serial(self, net, fns):
        scenarios = [
            Scenario("fast-disk", demand_scale={"disk": 0.5}),
            Scenario("more-cores", servers={"cpu": 8}),
            Scenario("patient-users", think_time=2.0),
        ]
        serial = evaluate_scenarios(net, fns, scenarios, max_population=80, workers=1)
        parallel = evaluate_scenarios(net, fns, scenarios, max_population=80, workers=2)
        assert list(serial) == list(parallel)
        for name in serial:
            np.testing.assert_array_equal(
                serial[name].result.throughput, parallel[name].result.throughput
            )
            np.testing.assert_array_equal(
                serial[name].result.queue_lengths, parallel[name].result.queue_lengths
            )


class TestOutcomesTableNoSLA:
    def test_renders_without_sla(self, net, fns):
        out = evaluate_scenarios(net, fns, [], max_population=20)
        text = outcomes_table(out)
        assert "baseline" in text
        assert "max users in SLA" not in text
