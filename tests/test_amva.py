"""Approximate MVA baselines (Schweitzer, Seidmann)."""

import numpy as np
import pytest

from repro.core import (
    ClosedNetwork,
    Station,
    approximate_multiserver_mva,
    exact_multiserver_mva,
    exact_mva,
    schweitzer_amva,
    seidmann_transform,
)


class TestSchweitzer:
    def test_close_to_exact_single_server(self, two_station_net):
        ap = schweitzer_amva(two_station_net, 100)
        ex = exact_mva(two_station_net, 100)
        rel = np.abs(ap.throughput - ex.throughput) / ex.throughput
        assert rel.max() < 0.05

    def test_exact_at_n1(self, two_station_net):
        ap = schweitzer_amva(two_station_net, 1)
        assert ap.throughput[0] == pytest.approx(1 / 1.13, rel=1e-8)

    def test_littles_law(self, two_station_net):
        ap = schweitzer_amva(two_station_net, 60)
        assert ap.littles_law_residual().max() < 1e-8

    def test_same_asymptote_as_exact(self, two_station_net):
        ap = schweitzer_amva(two_station_net, 600)
        assert ap.throughput[-1] == pytest.approx(1 / 0.08, rel=1e-2)

    def test_rejects_bad_population(self, two_station_net):
        with pytest.raises(ValueError):
            schweitzer_amva(two_station_net, 0)


class TestSeidmannTransform:
    def test_splits_multiserver_station(self, multiserver_net):
        t = seidmann_transform(multiserver_net)
        names = t.station_names
        assert "cpu" in names and "cpu.seidmann-delay" in names
        assert t["cpu"].servers == 1
        assert t["cpu"].demand == pytest.approx(0.1)
        assert t["cpu.seidmann-delay"].kind == "delay"
        assert t["cpu.seidmann-delay"].demand == pytest.approx(0.3)

    def test_leaves_single_server_untouched(self, two_station_net):
        t = seidmann_transform(two_station_net)
        assert t.station_names == two_station_net.station_names

    def test_preserves_total_demand(self, multiserver_net):
        t = seidmann_transform(multiserver_net)
        assert t.demands_at(1).sum() == pytest.approx(
            multiserver_net.demands_at(1).sum()
        )

    def test_wraps_callable_demands(self, varying_net):
        t = seidmann_transform(varying_net)
        # demand at n: 0.25 + 0.15 exp(-n/50); queue part is /4
        expected = (0.25 + 0.15 * np.exp(-10 / 50.0)) / 4
        assert t["cpu"].demand_at(10) == pytest.approx(expected, rel=1e-9)


class TestApproximateMultiserver:
    def test_correct_limits(self, multiserver_net):
        ap = approximate_multiserver_mva(multiserver_net, 400)
        # n=1: full demand; saturation: C/D.
        assert ap.response_time[0] == pytest.approx(0.45, rel=1e-6)
        assert ap.throughput[-1] == pytest.approx(10.0, rel=1e-2)

    def test_within_few_percent_of_exact_midrange(self, multiserver_net):
        ap = approximate_multiserver_mva(multiserver_net, 100)
        ex = exact_multiserver_mva(multiserver_net, 100)
        rel = np.abs(ap.throughput - ex.throughput) / ex.throughput
        assert rel.max() < 0.08

    def test_is_not_exact(self, manycore_net):
        # It is an approximation: visible error somewhere in the transition.
        ap = approximate_multiserver_mva(manycore_net, 200)
        ex = exact_multiserver_mva(manycore_net, 200)
        rel = np.abs(ap.throughput - ex.throughput) / ex.throughput
        assert rel.max() > 0.005

    def test_reports_original_station_names(self, multiserver_net):
        ap = approximate_multiserver_mva(multiserver_net, 20)
        assert ap.station_names == multiserver_net.station_names

    def test_folds_delay_back_into_parent(self, multiserver_net):
        ap = approximate_multiserver_mva(multiserver_net, 20)
        # CPU residence must include the Seidmann delay share: >= D at n=1.
        cpu_col = 0
        assert ap.residence_times[0, cpu_col] == pytest.approx(0.4, rel=1e-6)

    def test_demand_override(self, multiserver_net):
        ap = approximate_multiserver_mva(multiserver_net, 10, demands=[0.8, 0.05])
        assert ap.response_time[0] == pytest.approx(0.85, rel=1e-6)
