"""The persistent sqlite cache tier and its cross-process guarantees.

Satellites (b) and (c): `cache_stats()`/`repro cache` coverage of the
persistent tier, the PR 5 non-fatal degradation contract extended to
disk failures, stable fingerprints across *separate interpreter
processes*, and sha256 corruption detection.
"""

from __future__ import annotations

import os
import re
import sqlite3
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import ClosedNetwork, Station
from repro.solvers import (
    PersistentCache,
    Scenario,
    SolverCache,
    persistent_key,
    solve,
)

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "cache.sqlite")


def _net():
    return ClosedNetwork(
        [Station("cpu", 0.05), Station("disk", 0.08)], think_time=1.0
    )


# -- persistent_key determinism ----------------------------------------------


class TestPersistentKey:
    def test_digest_is_hex_sha256(self):
        digest = persistent_key(("solve", ("abc",), "exact-mva", "scalar", ()))
        assert len(digest) == 64
        assert int(digest, 16) >= 0

    def test_bool_and_int_encode_differently(self):
        assert persistent_key((True,)) != persistent_key((1,))
        assert persistent_key((False,)) != persistent_key((0,))

    def test_negative_zero_folds(self):
        assert persistent_key((0.0,)) == persistent_key((-0.0,))

    def test_nan_folds_to_one_pattern(self):
        quiet = float("nan")
        other = np.float64(np.uint64(0x7FF8000000000001).view(np.float64))
        assert persistent_key((quiet,)) == persistent_key((float(other),))

    def test_unencodable_raises(self):
        with pytest.raises(TypeError, match="unencodable"):
            persistent_key((object(),))

    def test_same_scenario_key_across_processes(self, db_path):
        """The satellite (c) core claim: fingerprint + digest stability.

        Two *separate interpreter processes* compute the digest of the
        same scenario's cache key; both must match this process's.
        """
        script = textwrap.dedent(
            """
            from repro.core import ClosedNetwork, Station
            from repro.solvers import Scenario, persistent_key
            net = ClosedNetwork(
                [Station("cpu", 0.05), Station("disk", 0.08)],
                think_time=1.0,
            )
            sc = Scenario(net, max_population=40)
            key = ("solve", (sc.fingerprint(),), "exact-mva", "scalar", ())
            print(persistent_key(key))
            """
        )
        digests = set()
        for seed in ("0", "12345"):  # different hash randomization per run
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={
                    **os.environ,
                    "PYTHONPATH": REPO_SRC,
                    "PYTHONHASHSEED": seed,
                },
            )
            digests.add(out.stdout.strip())
        sc = Scenario(_net(), max_population=40)
        local = persistent_key(("solve", (sc.fingerprint(),), "exact-mva", "scalar", ()))
        assert digests == {local}


# -- the store itself ---------------------------------------------------------


class TestPersistentCache:
    def test_round_trip_and_stats(self, db_path):
        store = PersistentCache(db_path)
        store.put("a" * 64, {"x": np.arange(4.0)}, method="exact-mva")
        value = store.get("a" * 64)
        assert np.array_equal(value["x"], np.arange(4.0))
        stats = store.stats()
        assert stats.hits == 1 and stats.writes == 1 and stats.entries == 1
        assert stats.bytes > 0 and stats.path == db_path

    def test_miss_counts(self, db_path):
        store = PersistentCache(db_path)
        assert store.get("f" * 64) is None
        assert store.stats().misses == 1

    def test_corrupted_payload_detected_as_miss(self, db_path):
        """sha256 mismatch -> row purged, error + miss counted, no crash."""
        store = PersistentCache(db_path)
        store.put("a" * 64, [1.0, 2.0, 3.0])
        store.close()
        conn = sqlite3.connect(db_path)
        (payload,) = conn.execute(
            "SELECT payload FROM solver_cache WHERE key = ?", ("a" * 64,)
        ).fetchone()
        mangled = bytes([payload[0] ^ 0xFF]) + payload[1:]
        conn.execute(
            "UPDATE solver_cache SET payload = ? WHERE key = ?", (mangled, "a" * 64)
        )
        conn.commit()
        conn.close()

        fresh = PersistentCache(db_path)
        assert fresh.get("a" * 64) is None
        stats = fresh.stats()
        assert stats.errors == 1 and stats.misses == 1
        # the poisoned row is gone; a re-put works again
        fresh.put("a" * 64, [1.0])
        assert fresh.get("a" * 64) == [1.0]

    def test_unreadable_store_never_raises(self, tmp_path):
        bogus = tmp_path / "not-a-database.sqlite"
        bogus.write_bytes(b"this is not sqlite at all" * 10)
        store = PersistentCache(str(bogus))
        assert store.get("a" * 64) is None
        store.put("a" * 64, [1])
        assert store.stats().errors >= 2  # both operations degraded

    def test_missing_parent_directory_never_raises(self, tmp_path):
        store = PersistentCache(str(tmp_path / "no" / "such" / "dir" / "db.sqlite"))
        assert store.get("a" * 64) is None
        store.put("a" * 64, [1])
        assert store.stats().errors >= 2

    def test_clear(self, db_path):
        store = PersistentCache(db_path)
        store.put("a" * 64, [1])
        store.put("b" * 64, [2])
        store.clear()
        assert store.stats().entries == 0
        assert store.get("a" * 64) is None


# -- cross-process concurrency ------------------------------------------------


class TestConcurrentPersistentCache:
    """The fabric contract: many worker processes share one sqlite store.

    ``repro worker`` fleets and process-sharded sweeps hammer the same
    cache file concurrently; sqlite serializes the writes, and every
    degradation (lock contention, corrupted rows) must count as a miss
    or error — never raise into the solve path.
    """

    N_PROCS = 4
    KEYS_PER_PROC = 8

    def _spawn(self, script: str, *args: str) -> subprocess.Popen:
        return subprocess.Popen(
            [sys.executable, "-c", script, *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": REPO_SRC},
        )

    def test_concurrent_writers_and_readers(self, db_path):
        """N processes write disjoint + shared keys at once; nothing is lost."""
        script = textwrap.dedent(
            """
            import sys
            from repro.solvers import PersistentCache
            proc, db = int(sys.argv[1]), sys.argv[2]
            store = PersistentCache(db)
            for i in range(8):
                key = f"{proc}{i:02d}".ljust(64, "a")
                store.put(key, [float(proc), float(i)])
                assert store.get(key) == [float(proc), float(i)]
            # one key every process fights over — last writer wins, any
            # reader sees a complete payload
            store.put("e" * 64, [float(proc)])
            value = store.get("e" * 64)
            assert isinstance(value, list) and len(value) == 1
            print(store.stats().errors)
            """
        )
        procs = [self._spawn(script, str(p), db_path) for p in range(self.N_PROCS)]
        outs = [p.communicate(timeout=120) for p in procs]
        assert all(p.returncode == 0 for p in procs), [e for _, e in outs]
        # sqlite may count transient lock contention as degraded ops, but
        # every process must have finished its read-your-write loop
        store = PersistentCache(db_path)
        for proc in range(self.N_PROCS):
            for i in range(self.KEYS_PER_PROC):
                key = f"{proc}{i:02d}".ljust(64, "a")
                assert store.get(key) == [float(proc), float(i)]
        contested = store.get("e" * 64)
        assert contested in [[float(p)] for p in range(self.N_PROCS)]
        assert store.stats().entries == self.N_PROCS * self.KEYS_PER_PROC + 1

    def test_corrupted_row_concurrent_readers_count_miss(self, db_path):
        """Every concurrent reader of a poisoned row gets a counted miss."""
        store = PersistentCache(db_path)
        store.put("a" * 64, [1.0, 2.0])
        store.close()
        conn = sqlite3.connect(db_path)
        (payload,) = conn.execute(
            "SELECT payload FROM solver_cache WHERE key = ?", ("a" * 64,)
        ).fetchone()
        conn.execute(
            "UPDATE solver_cache SET payload = ? WHERE key = ?",
            (bytes([payload[0] ^ 0xFF]) + payload[1:], "a" * 64),
        )
        conn.commit()
        conn.close()

        script = textwrap.dedent(
            """
            import sys
            from repro.solvers import PersistentCache
            store = PersistentCache(sys.argv[1])
            value = store.get("a" * 64)
            stats = store.stats()
            # miss (and the sha mismatch counted as an error) — never a raise;
            # concurrent purges may race, so value is None either way
            assert value is None
            print(stats.misses, stats.errors)
            """
        )
        procs = [self._spawn(script, db_path) for _ in range(self.N_PROCS)]
        outs = [p.communicate(timeout=120) for p in procs]
        assert all(p.returncode == 0 for p in procs), [e for _, e in outs]
        for out, _ in outs:
            misses, _errors = out.split()
            assert int(misses) >= 1
        # at least the first reader saw the corruption itself
        assert any(int(out.split()[1]) >= 1 for out, _ in outs)
        # the poisoned row was purged; the store heals on re-put
        fresh = PersistentCache(db_path)
        fresh.put("a" * 64, [3.0])
        assert fresh.get("a" * 64) == [3.0]


# -- SolverCache integration --------------------------------------------------


class TestTwoTierCache:
    def test_restart_warm_hit_bit_identical(self, db_path):
        net = _net()
        first = SolverCache(persistent=db_path)
        cold = solve(Scenario(net, 60), method="exact-mva", cache=first)

        restarted = SolverCache(persistent=db_path)  # fresh memory tier
        warm = solve(Scenario(net, 60), method="exact-mva", cache=restarted)
        assert np.array_equal(warm.throughput, cold.throughput)
        stats = restarted.stats()
        assert stats.persistent_hits == 1
        assert stats.hits == 0  # memory tier was empty
        # promotion: the next repeat is a pure memory hit
        solve(Scenario(net, 60), method="exact-mva", cache=restarted)
        assert restarted.stats().hits == 1

    def test_two_processes_share_one_store(self, db_path):
        """Worker fleet warming: process A solves, process B hits."""
        script = textwrap.dedent(
            f"""
            from repro.core import ClosedNetwork, Station
            from repro.solvers import Scenario, SolverCache, solve
            net = ClosedNetwork(
                [Station("cpu", 0.05), Station("disk", 0.08)],
                think_time=1.0,
            )
            cache = SolverCache(persistent={db_path!r})
            solve(Scenario(net, 45), method="exact-mva", cache=cache)
            print(cache.stats().persistent_hits)
            """
        )
        outputs = []
        for seed in ("0", "999"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONPATH": REPO_SRC, "PYTHONHASHSEED": seed},
            )
            outputs.append(out.stdout.strip())
        # first process: cold solve (0 persistent hits); second: warm hit
        assert outputs == ["0", "1"]

    def test_persist_false_skips_disk(self, db_path):
        cache = SolverCache(persistent=db_path)
        cache.put(("k",), [1.0], persist=False)
        assert cache.stats().persistent.entries == 0
        cache.put(("k2",), [2.0])
        assert cache.stats().persistent.entries == 1

    def test_tier_errors_roll_up(self, tmp_path):
        bogus = tmp_path / "garbage.sqlite"
        bogus.write_bytes(b"garbage bytes, not sqlite" * 8)
        cache = SolverCache(persistent=str(bogus))
        result = solve(Scenario(_net(), 20), method="exact-mva", cache=cache)
        assert result.max_population == 20  # solve unaffected
        assert cache.stats().errors >= 1  # degraded disk ops were counted

    def test_clear_keep_persistent(self, db_path):
        cache = SolverCache(persistent=db_path)
        solve(Scenario(_net(), 30), method="exact-mva", cache=cache)
        cache.clear(persistent=False)
        assert cache.stats().persistent.entries == 1
        cache.clear()
        assert cache.stats().persistent.entries == 0

    def test_fault_injection_persistent_point(self, db_path):
        from repro.engine.faults import Fault, FaultPlan, injected

        cache = SolverCache(persistent=db_path)
        with injected(FaultPlan((Fault(kind="corrupt-persistent-entry"),))):
            solve(Scenario(_net(), 25), method="exact-mva", cache=cache)
        stats = cache.stats()
        assert stats.errors >= 1
        # the solve itself survived and is memory-cached
        solve(Scenario(_net(), 25), method="exact-mva", cache=cache)
        assert cache.stats().hits >= 1


# -- CLI ----------------------------------------------------------------------


class TestCacheCLI:
    def test_cache_path_reports_persistent_rows(self, db_path, capsys):
        assert cli_main(["cache", "--path", db_path, "--demo"]) == 0
        out = capsys.readouterr().out
        assert "persistent entries" in out
        assert db_path in out
        assert "trajectory prefix hits" in out

    def test_cache_clear_drops_persistent_store(self, db_path, capsys):
        assert cli_main(["cache", "--path", db_path, "--demo"]) == 0
        capsys.readouterr()
        assert cli_main(["cache", "--path", db_path, "--clear"]) == 0
        out = capsys.readouterr().out
        assert re.search(r"persistent entries\s*\|\s*0\b", out)

    def test_cache_without_path_unchanged(self, capsys):
        assert cli_main(["cache", "--maxsize", "64", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "persistent" not in out
        assert "64" in out
