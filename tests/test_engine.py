"""Batched kernels and the fork-join sweep executor."""

import numpy as np
import pytest

from repro.core import (
    ClosedNetwork,
    Station,
    exact_mva,
    mvasd,
    schweitzer_amva,
)
from repro.core.mvasd import _resolve_demand_functions, precompute_demand_matrix
from repro.engine import (
    BatchedMVAResult,
    ScenarioGrid,
    batched_exact_mva,
    batched_mvasd,
    batched_schweitzer_amva,
    demand_matrix_stack,
    parallel_map,
    resolve_workers,
    spawn_seeds,
)

TOL = 1e-10


def _demand_stack(rng, s, k):
    return rng.uniform(0.005, 0.25, size=(s, k))


class TestBatchedExactMVA:
    def test_matches_scalar_per_scenario(self, two_station_net):
        rng = np.random.default_rng(1)
        demands = _demand_stack(rng, 6, len(two_station_net))
        batched = batched_exact_mva(two_station_net, 30, demands)
        for i in range(6):
            scalar = exact_mva(two_station_net, 30, demands=demands[i])
            np.testing.assert_allclose(
                batched.throughput[i], scalar.throughput, rtol=0, atol=TOL
            )
            np.testing.assert_allclose(
                batched.queue_lengths[i], scalar.queue_lengths, rtol=0, atol=TOL
            )
            np.testing.assert_allclose(
                batched.residence_times[i], scalar.residence_times, rtol=0, atol=TOL
            )

    def test_delay_stations_and_think_time_axis(self):
        net = ClosedNetwork(
            [Station("cpu", 0.05), Station("wan", 0.2, kind="delay")], think_time=0.5
        )
        demands = np.array([[0.05, 0.2], [0.08, 0.1]])
        thinks = np.array([0.25, 2.0])
        batched = batched_exact_mva(net, 20, demands, think_times=thinks)
        for i in range(2):
            scalar = exact_mva(net.with_think_time(thinks[i]), 20, demands=demands[i])
            np.testing.assert_allclose(
                batched.throughput[i], scalar.throughput, rtol=0, atol=TOL
            )
        np.testing.assert_allclose(batched.cycle_time, batched.response_time + thinks[:, None])

    def test_single_vector_is_one_scenario(self, two_station_net):
        batched = batched_exact_mva(two_station_net, 10, [0.05, 0.08])
        assert batched.n_scenarios == 1
        scalar = exact_mva(two_station_net, 10, demands=[0.05, 0.08])
        np.testing.assert_allclose(batched.throughput[0], scalar.throughput, atol=TOL)

    def test_validation(self, two_station_net):
        with pytest.raises(ValueError, match="max_population"):
            batched_exact_mva(two_station_net, 0, [[0.05, 0.08]])
        with pytest.raises(ValueError, match="demand stack"):
            batched_exact_mva(two_station_net, 5, [[0.05, 0.08, 0.1]])
        with pytest.raises(ValueError, match="non-negative"):
            batched_exact_mva(two_station_net, 5, [[0.05, -0.08]])
        with pytest.raises(ValueError, match="think times"):
            batched_exact_mva(two_station_net, 5, [[0.05, 0.08]], think_times=[1.0, 2.0])


class TestBatchedSchweitzer:
    def test_matches_scalar_per_scenario(self, two_station_net):
        rng = np.random.default_rng(2)
        demands = _demand_stack(rng, 8, len(two_station_net))
        batched = batched_schweitzer_amva(two_station_net, 25, demands)
        for i in range(8):
            scalar = schweitzer_amva(two_station_net, 25, demands=demands[i])
            np.testing.assert_allclose(
                batched.throughput[i], scalar.throughput, rtol=0, atol=TOL
            )
            np.testing.assert_allclose(
                batched.queue_lengths[i], scalar.queue_lengths, rtol=0, atol=TOL
            )

    def test_heterogeneous_convergence_rates(self):
        # Mix a nearly-balanced network with a heavily bottlenecked one:
        # their fixed points converge at very different speeds, exercising
        # the per-scenario freeze logic.
        net = ClosedNetwork([Station("a", 0.1), Station("b", 0.1)], think_time=0.1)
        demands = np.array([[0.1, 0.1], [0.5, 0.001]])
        batched = batched_schweitzer_amva(net, 40, demands)
        for i in range(2):
            scalar = schweitzer_amva(net, 40, demands=demands[i])
            np.testing.assert_allclose(
                batched.throughput[i], scalar.throughput, rtol=0, atol=TOL
            )


class TestBatchedMVASD:
    @pytest.mark.parametrize("single_server", [False, True])
    def test_matches_scalar_on_varying_multiserver_net(self, varying_net, single_server):
        n = 40
        fns = _resolve_demand_functions(varying_net, None)
        base = precompute_demand_matrix(fns, n)
        scales = np.linspace(0.6, 1.4, 5)
        matrices = base[None, :, :] * scales[:, None, None]
        batched = batched_mvasd(
            varying_net, n, matrices, single_server=single_server
        )
        for i, scale in enumerate(scales):
            scaled = [lambda lvl, _f=f, _s=scale: _f(lvl) * _s for f in fns]
            scalar = mvasd(
                varying_net, n, demand_functions=scaled, single_server=single_server
            )
            np.testing.assert_allclose(
                batched.throughput[i], scalar.throughput, rtol=0, atol=TOL
            )
            np.testing.assert_allclose(
                batched.queue_lengths[i], scalar.queue_lengths, rtol=0, atol=TOL
            )
            np.testing.assert_allclose(
                batched.demands_used[i], scalar.demands_used, rtol=0, atol=TOL
            )

    def test_manycore_network(self, manycore_net):
        n = 60
        fns = _resolve_demand_functions(manycore_net, None)
        matrices = demand_matrix_stack([fns, fns], n)
        matrices[1] *= 0.8
        batched = batched_mvasd(manycore_net, n, matrices)
        for i, scale in enumerate((1.0, 0.8)):
            scaled = [lambda lvl, _f=f, _s=scale: _f(lvl) * _s for f in fns]
            scalar = mvasd(manycore_net, n, demand_functions=scaled)
            np.testing.assert_allclose(
                batched.throughput[i], scalar.throughput, rtol=0, atol=TOL
            )

    def test_shape_validation(self, varying_net):
        with pytest.raises(ValueError, match="demand-matrix stack"):
            batched_mvasd(varying_net, 10, np.zeros((2, 5, 2)))
        with pytest.raises(ValueError, match="non-negative"):
            batched_mvasd(varying_net, 4, -np.ones((1, 4, 2)))

    def test_scenario_roundtrip(self, varying_net):
        fns = _resolve_demand_functions(varying_net, None)
        matrices = demand_matrix_stack([fns], 15)
        batched = batched_mvasd(varying_net, 15, matrices)
        result = batched.scenario(0)
        assert result.max_population == 15
        assert result.station_names == varying_net.station_names
        np.testing.assert_allclose(result.littles_law_residual(), 0.0, atol=1e-12)
        with pytest.raises(IndexError):
            batched.scenario(3)


class TestBatchedResult:
    def test_shape_validation(self):
        pops = np.arange(1, 4)
        good = dict(
            populations=pops,
            throughput=np.ones((2, 3)),
            response_time=np.ones((2, 3)),
            queue_lengths=np.ones((2, 3, 1)),
            residence_times=np.ones((2, 3, 1)),
            utilizations=np.ones((2, 3, 1)),
            station_names=("cpu",),
            think_times=np.ones(2),
            solver="test",
        )
        BatchedMVAResult(**good)
        bad = dict(good, throughput=np.ones((3, 2)))
        with pytest.raises(ValueError, match="throughput"):
            BatchedMVAResult(**bad)
        bad = dict(good, think_times=np.ones(3))
        with pytest.raises(ValueError, match="think_times"):
            BatchedMVAResult(**bad)

    def test_peak_throughput(self, two_station_net):
        batched = batched_exact_mva(
            two_station_net, 20, [[0.05, 0.08], [0.1, 0.16]]
        )
        assert len(batched) == 2
        np.testing.assert_allclose(
            batched.peak_throughput(), batched.throughput.max(axis=1)
        )
        # Halved demands must sustain roughly double the throughput.
        assert batched.peak_throughput()[0] > batched.peak_throughput()[1]


class TestPrecomputeDemandMatrix:
    def test_matches_per_level_calls(self, varying_net):
        fns = _resolve_demand_functions(varying_net, None)
        matrix = precompute_demand_matrix(fns, 25)
        assert matrix.shape == (25, 2)
        for n in (1, 10, 25):
            np.testing.assert_array_equal(
                matrix[n - 1], [float(f(float(n))) for f in fns]
            )

    def test_scalar_only_callable_falls_back(self):
        def scalar_only(level):
            return 0.1 if level < 10 else 0.2  # array input would raise

        matrix = precompute_demand_matrix([scalar_only], 15)
        assert matrix[0, 0] == 0.1 and matrix[-1, 0] == 0.2

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            precompute_demand_matrix([lambda n: 0.1 - 0.05 * n], 10)

    def test_explicit_levels(self):
        matrix = precompute_demand_matrix(
            [np.sqrt], 0, levels=np.array([1.0, 4.0, 9.0])
        )
        np.testing.assert_allclose(matrix[:, 0], [1.0, 2.0, 3.0])


# -- sweep executor -----------------------------------------------------------


def _square_task(item, payload):
    return item * item + (payload or 0)


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(12))
        serial = parallel_map(_square_task, items, workers=1)
        parallel = parallel_map(_square_task, items, workers=2)
        assert serial == parallel == [i * i for i in items]

    def test_payload_passed_through(self):
        assert parallel_map(_square_task, [2, 3], workers=1, payload=100) == [104, 109]
        assert parallel_map(_square_task, [2, 3], workers=2, payload=100) == [104, 109]

    def test_unpicklable_task_falls_back_to_serial(self):
        items = [1, 2, 3]
        # A lambda cannot cross the pipe; parallel_map must still answer.
        assert parallel_map(lambda i, _p: i + 1, items, workers=2) == [2, 3, 4]

    def test_empty_and_single(self):
        assert parallel_map(_square_task, [], workers=4) == []
        assert parallel_map(_square_task, [5], workers=4) == [25]

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)


class TestSpawnSeeds:
    def test_deterministic_and_distinct(self):
        a = spawn_seeds(42, 8)
        assert a == spawn_seeds(42, 8)
        assert len(set(a)) == 8
        assert a[:4] == spawn_seeds(42, 4)  # prefix-stable: count extension safe
        assert spawn_seeds(43, 8) != a

    def test_validation(self):
        with pytest.raises(ValueError, match="seed"):
            spawn_seeds(-1, 2)
        with pytest.raises(ValueError, match="count"):
            spawn_seeds(0, 0)


class TestScenarioGrid:
    def test_product_row_major(self):
        grid = ScenarioGrid.product(a=(1, 2), b=("x", "y", "z"))
        combos = grid.combinations()
        assert len(grid) == len(combos) == 6
        assert combos[0] == {"a": 1, "b": "x"}
        assert combos[1] == {"a": 1, "b": "y"}
        assert combos[-1] == {"a": 2, "b": "z"}
        assert grid.axis_names == ("a", "b")
        assert grid.labels()[0] == "a=1, b=x"

    def test_validation(self):
        with pytest.raises(ValueError, match="axis"):
            ScenarioGrid.product()
        with pytest.raises(ValueError, match="points"):
            ScenarioGrid.product(a=())

    def test_from_scenarios(self):
        explicit = ScenarioGrid.from_scenarios([{"a": 1}, {"a": 9, "b": 2}])
        assert explicit == [{"a": 1}, {"a": 9, "b": 2}]
