"""Property-based tests for the extension substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.whatif import SLA, Scenario, max_users_within_sla
from repro.core import ClosedNetwork, Station, erlang_b, erlang_c, mvasd
from repro.core.multiclass_amva import bard_schweitzer
from repro.interpolate import MonotoneCubicSpline


class TestErlangProperties:
    @given(
        servers=st.integers(1, 40),
        load=st.floats(0.0, 200.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_probabilities_in_unit_interval(self, servers, load):
        b = erlang_b(servers, load)
        c = erlang_c(servers, load)
        assert 0.0 <= b <= 1.0
        assert 0.0 <= c <= 1.0

    @given(
        servers=st.integers(1, 20),
        load=st.floats(0.01, 19.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_delay_prob_at_least_blocking_prob(self, servers, load):
        # Erlang-C >= Erlang-B at the same (C, a): a delayed system queues
        # every customer a loss system would have blocked.
        if load >= servers:
            return
        assert erlang_c(servers, load) >= erlang_b(servers, load) - 1e-12

    @given(servers=st.integers(1, 20), load=st.floats(0.01, 50.0))
    @settings(max_examples=60, deadline=None)
    def test_more_servers_reduce_blocking(self, servers, load):
        assert erlang_b(servers + 1, load) <= erlang_b(servers, load) + 1e-12


class TestMonotoneProperties:
    @given(
        data=st.data(),
        n=st.integers(3, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_data_gives_monotone_interpolant(self, data, n):
        xs = np.cumsum(
            np.array(data.draw(st.lists(st.floats(0.1, 10.0), min_size=n, max_size=n)))
        )
        steps = np.array(
            data.draw(st.lists(st.floats(0.0, 5.0), min_size=n - 1, max_size=n - 1))
        )
        ys = np.concatenate([[0.0], np.cumsum(steps)])  # non-decreasing
        s = MonotoneCubicSpline(xs, ys)
        dense = s(np.linspace(xs[0], xs[-1], 400))
        assert np.all(np.diff(dense) >= -1e-9 * max(1.0, abs(ys[-1])))

    @given(data=st.data(), n=st.integers(2, 10))
    @settings(max_examples=60, deadline=None)
    def test_range_bounded_by_data(self, data, n):
        xs = np.cumsum(
            np.array(data.draw(st.lists(st.floats(0.1, 10.0), min_size=n, max_size=n)))
        )
        ys = np.array(data.draw(st.lists(st.floats(-50, 50), min_size=n, max_size=n)))
        s = MonotoneCubicSpline(xs, ys)
        dense = s(np.linspace(xs[0] - 5, xs[-1] + 5, 300))
        lo, hi = ys.min(), ys.max()
        span = max(hi - lo, 1.0)
        assert dense.min() >= lo - 1e-9 * span
        assert dense.max() <= hi + 1e-9 * span


class TestWhatIfProperties:
    @given(
        demands=st.lists(st.floats(0.01, 0.3), min_size=2, max_size=4),
        sla_ct=st.floats(0.5, 20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_max_users_is_maximal(self, demands, sla_ct):
        net = ClosedNetwork(
            [Station(f"s{i}", d) for i, d in enumerate(demands)], think_time=1.0
        )
        result = mvasd(net, 60)
        sla = SLA(max_cycle_time=sla_ct)
        users = max_users_within_sla(result, sla)
        if users > 0:
            assert result.cycle_time[users - 1] <= sla_ct
        if users < 60:
            # the very next level must violate (cycle time is monotone here)
            assert result.cycle_time[users] > sla_ct

    @given(
        factor=st.floats(0.1, 1.0),
        demands=st.lists(st.floats(0.05, 0.3), min_size=2, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_speeding_up_never_hurts(self, factor, demands):
        net = ClosedNetwork(
            [Station(f"s{i}", d) for i, d in enumerate(demands)], think_time=1.0
        )
        fns = {f"s{i}": (lambda n, _d=d: _d) for i, d in enumerate(demands)}
        base = mvasd(net, 30, demand_functions=fns)
        scn = Scenario("faster", demand_scale={"s0": factor})
        new_net, new_fns = scn.apply(net, fns)
        fast = mvasd(new_net, 30, demand_functions=new_fns)
        assert np.all(fast.throughput >= base.throughput - 1e-9)


class TestBardSchweitzerProperties:
    @given(
        data=st.data(),
        k=st.integers(1, 4),
        c=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_littles_law_per_class(self, data, k, c):
        demands = np.array(
            data.draw(
                st.lists(
                    st.lists(st.floats(0.01, 0.3), min_size=c, max_size=c),
                    min_size=k,
                    max_size=k,
                )
            )
        )
        pops = data.draw(st.lists(st.integers(0, 10), min_size=c, max_size=c))
        if sum(pops) == 0:
            return
        z = data.draw(st.lists(st.floats(0.1, 3.0), min_size=c, max_size=c))
        x, r, q = bard_schweitzer(demands, pops, z)
        for ci in range(c):
            if pops[ci] > 0:
                assert x[ci] * (r[ci] + z[ci]) == pytest.approx(pops[ci], rel=1e-6)

    @given(
        data=st.data(),
        k=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_queues_account_for_all_customers(self, data, k):
        demands = np.array(
            data.draw(
                st.lists(
                    st.lists(st.floats(0.01, 0.3), min_size=2, max_size=2),
                    min_size=k,
                    max_size=k,
                )
            )
        )
        pops = [data.draw(st.integers(1, 8)), data.draw(st.integers(1, 8))]
        z = [1.0, 0.5]
        x, r, q = bard_schweitzer(demands, pops, z)
        thinking = (x * np.array(z)).sum()
        assert q.sum() + thinking == pytest.approx(sum(pops), rel=1e-6)
