"""Algorithm 2 — exact multi-server MVA (convolution backend + recursion)."""

import numpy as np
import pytest

from repro.core import (
    ClosedNetwork,
    Station,
    exact_load_dependent_mva,
    exact_multiserver_mva,
    exact_mva,
)
from repro.core.multiserver import (
    MultiServerState,
    multiserver_step,
    update_marginals,
)
from repro.core.mvasd import mvasd


class TestConvolutionBackend:
    def test_matches_load_dependent_reference_c4(self, multiserver_net):
        a2 = exact_multiserver_mva(multiserver_net, 150)
        ld = exact_load_dependent_mva(multiserver_net, 150)
        np.testing.assert_allclose(a2.throughput, ld.throughput, rtol=1e-9)

    def test_single_customer_sees_full_demand(self, multiserver_net):
        r = exact_multiserver_mva(multiserver_net, 1)
        assert r.response_time[0] == pytest.approx(0.45)

    def test_reduces_to_single_server_mva_when_c1(self, two_station_net):
        a2 = exact_multiserver_mva(two_station_net, 80)
        a1 = exact_mva(two_station_net, 80)
        np.testing.assert_allclose(a2.throughput, a1.throughput, rtol=1e-9)
        np.testing.assert_allclose(a2.queue_lengths, a1.queue_lengths, rtol=1e-7, atol=1e-12)

    def test_saturates_at_c_over_d(self, multiserver_net):
        r = exact_multiserver_mva(multiserver_net, 400)
        assert r.throughput[-1] == pytest.approx(4 / 0.4, rel=1e-3)

    def test_stable_at_16_cores_through_saturation(self, manycore_net):
        # The regime where the plain recursion blows up.
        r = exact_multiserver_mva(manycore_net, 400)
        # disk (D=0.01) is the true bottleneck: X_max = 100
        assert r.throughput[-1] == pytest.approx(100.0, rel=1e-3)
        assert np.all(np.diff(r.throughput) > -1e-6)

    def test_known_point_16_cores(self, manycore_net):
        # Independently verified by simulation and log-domain convolution:
        # X(120) = 93.94 (DES 93.91 +/- 0.03).
        r = exact_multiserver_mva(manycore_net, 120)
        assert r.throughput[-1] == pytest.approx(93.94, rel=2e-3)

    def test_littles_law(self, manycore_net):
        r = exact_multiserver_mva(manycore_net, 200)
        assert r.littles_law_residual().max() < 1e-12

    def test_job_conservation_with_detail(self, manycore_net):
        r = exact_multiserver_mva(manycore_net, 150, station_detail=True)
        # queued jobs + thinking jobs == population at every level
        thinking = r.throughput * 1.0
        total = r.queue_lengths.sum(axis=1) + thinking
        np.testing.assert_allclose(total, r.populations, rtol=1e-9)

    def test_multiserver_beats_single_server_model(self, multiserver_net):
        # Treating the 4-core CPU as one server of demand 0.4 must predict
        # strictly lower throughput at mid load.
        ms = exact_multiserver_mva(multiserver_net, 50)
        ss = exact_mva(multiserver_net, 50)
        assert ms.throughput[20] > ss.throughput[20]

    def test_normalized_single_server_overestimates(self, multiserver_net):
        # The Fig. 8 effect, other direction: demand/C as single server
        # underestimates contention at low-mid load -> higher throughput.
        ms = exact_multiserver_mva(multiserver_net, 50)
        norm = exact_mva(multiserver_net, 50, demands=[0.1, 0.05])
        assert norm.throughput[5] > ms.throughput[5]

    def test_demand_override(self, multiserver_net):
        r = exact_multiserver_mva(multiserver_net, 10, demands=[0.8, 0.05])
        assert r.response_time[0] == pytest.approx(0.85)

    def test_invalid_method(self, multiserver_net):
        with pytest.raises(ValueError, match="method"):
            exact_multiserver_mva(multiserver_net, 10, method="magic")


class TestRecursionBackend:
    def test_matches_convolution_at_small_c(self, multiserver_net):
        rec = exact_multiserver_mva(multiserver_net, 200, method="recursion")
        conv = exact_multiserver_mva(multiserver_net, 200)
        np.testing.assert_allclose(rec.throughput, conv.throughput, rtol=1e-8)

    def test_transition_bias_bounded_at_16_cores(self, manycore_net):
        # Renormalization keeps the recursion stable; bias < 2.5 % even in
        # the saturation transition where the raw recursion diverges.
        rec = exact_multiserver_mva(manycore_net, 300, method="recursion")
        conv = exact_multiserver_mva(manycore_net, 300)
        rel = np.abs(rec.throughput - conv.throughput) / conv.throughput
        assert rel.max() < 0.025

    def test_marginal_probabilities_shape(self, multiserver_net):
        rec = exact_multiserver_mva(multiserver_net, 50, method="recursion")
        probs = rec.marginal_probabilities["cpu"]
        assert probs.shape == (50, 4)

    def test_marginals_are_probabilities(self, multiserver_net):
        rec = exact_multiserver_mva(multiserver_net, 120, method="recursion")
        probs = rec.marginal_probabilities["cpu"]
        assert np.all(probs >= 0)
        assert np.all(probs.sum(axis=1) <= 1 + 1e-9)

    def test_empty_probability_decays_with_load(self, multiserver_net):
        # p(0) must fall from ~1 toward 0 as the CPU saturates (Fig. 3).
        rec = exact_multiserver_mva(multiserver_net, 150, method="recursion")
        p0 = rec.marginal_probabilities["cpu"][:, 0]
        assert p0[0] > 0.5
        assert p0[-1] < 0.05


class TestMultiServerState:
    def test_rejects_out_of_order_use(self):
        st = MultiServerState(4, 10)
        with pytest.raises(ValueError, match="out-of-order"):
            st.residence(2, 0.4)  # level 1 not yet updated
        st.residence(1, 0.4)
        with pytest.raises(ValueError, match="out-of-order"):
            st.update(2, 1.0, 0.4)

    def test_first_residence_is_demand(self):
        st = MultiServerState(8, 10)
        assert st.residence(1, 0.8) == pytest.approx(0.8)

    def test_queue_length_from_marginals(self):
        st = MultiServerState(2, 10)
        st.residence(1, 0.5)
        st.update(1, 1.0, 0.5)
        # After one customer at X=1, D=0.5: p(1)=0.5, p(0)=0.5 -> Q=0.5
        assert st.queue_length() == pytest.approx(0.5)

    def test_correction_factor_limits(self):
        st = MultiServerState(4, 10)
        # Empty system: F = C-1.
        assert st.correction_factor() == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiServerState(0, 10)
        with pytest.raises(ValueError):
            MultiServerState(4, 0)

    def test_marginals_pad_when_servers_exceed_population(self):
        # p(j) = 0 for j > N; marginals() must still return C entries.
        st = MultiServerState(3, 1)
        st.residence(1, 0.25)
        st.update(1, 4.0, 0.25)
        probs = st.marginals()
        assert probs.shape == (3,)
        np.testing.assert_allclose(probs, [0.0, 1.0, 0.0])

    def test_mvasd_with_servers_exceeding_population(self):
        net = ClosedNetwork([Station("pool", 0.0, servers=3)], think_time=0.0)
        result = mvasd(net, 1, demand_functions=[lambda n: 0.25])
        assert result.throughput[0] == pytest.approx(4.0)


class TestPaperLiteralTruncatedForm:
    """The small-C truncated step/update used for Fig. 3 exposition."""

    def test_single_server_step_is_mva(self):
        assert multiserver_step(0.2, 1, 3.0, np.zeros(1)) == pytest.approx(0.8)

    def test_empty_multiserver_step_gives_demand(self):
        probs = np.zeros(4)
        probs[0] = 1.0
        assert multiserver_step(0.4, 4, 0.0, probs) == pytest.approx(0.4)

    def test_update_noop_for_single_server(self):
        probs = np.array([1.0])
        update_marginals(probs, 5.0, 0.2, 1)
        np.testing.assert_array_equal(probs, [1.0])

    def test_truncated_recursion_tracks_exact_at_c4(self, multiserver_net):
        # Hand-rolled truncated loop vs the exact solver, C=4, stable regime.
        conv = exact_multiserver_mva(multiserver_net, 60)
        d = np.array([0.4, 0.05])
        q = np.zeros(2)
        probs = np.zeros(4)
        probs[0] = 1.0
        xs = []
        for n in range(1, 61):
            r0 = multiserver_step(d[0], 4, q[0], probs)
            r1 = d[1] * (1 + q[1])
            x = n / (1.0 + r0 + r1)
            q = x * np.array([r0, r1])
            update_marginals(probs, x, d[0], 4)
            xs.append(x)
        np.testing.assert_allclose(xs, conv.throughput, rtol=5e-3)
