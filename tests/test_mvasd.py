"""Algorithm 3 — MVASD."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station, exact_multiserver_mva, mvasd
from repro.interpolate import ServiceDemandModel


class TestMVASDBasics:
    def test_constant_demands_reduce_to_algorithm2(self, multiserver_net):
        r3 = mvasd(multiserver_net, 150)
        r2 = exact_multiserver_mva(multiserver_net, 150, method="recursion")
        np.testing.assert_allclose(r3.throughput, r2.throughput, rtol=1e-9)

    def test_demands_used_follow_the_curve(self, varying_net):
        r = mvasd(varying_net, 100)
        cpu_col = varying_net.station_names.index("cpu")
        used = r.demands_used[:, cpu_col]
        expected = 0.25 + 0.15 * np.exp(-r.populations / 50.0)
        np.testing.assert_allclose(used, expected, rtol=1e-9)

    def test_decreasing_demand_raises_ceiling(self, varying_net):
        frozen_at_1 = exact_multiserver_mva(varying_net, 300, demand_level=1.0)
        adaptive = mvasd(varying_net, 300)
        # With demand decaying toward 0.25, the adaptive model must exceed
        # the frozen-at-1 model's saturation throughput (4/0.4 = 10/s).
        assert adaptive.throughput[-1] > frozen_at_1.throughput[-1]
        assert adaptive.throughput[-1] == pytest.approx(4 / 0.25, rel=0.02)

    def test_littles_law(self, varying_net):
        r = mvasd(varying_net, 100)
        assert r.littles_law_residual().max() < 1e-12

    def test_explicit_demand_functions_mapping(self, multiserver_net):
        fns = {"cpu": lambda n: 0.4, "disk": lambda n: 0.05}
        r = mvasd(multiserver_net, 20, demand_functions=fns)
        assert r.response_time[0] == pytest.approx(0.45)

    def test_missing_function_rejected(self, multiserver_net):
        with pytest.raises(ValueError, match="missing demand functions"):
            mvasd(multiserver_net, 10, demand_functions={"cpu": lambda n: 0.4})

    def test_sequence_demand_functions(self, multiserver_net):
        r = mvasd(multiserver_net, 10, demand_functions=[lambda n: 0.4, lambda n: 0.05])
        assert r.response_time[0] == pytest.approx(0.45)

    def test_wrong_length_sequence_rejected(self, multiserver_net):
        with pytest.raises(ValueError, match="expected 2"):
            mvasd(multiserver_net, 10, demand_functions=[lambda n: 0.4])

    def test_negative_interpolated_demand_rejected(self, multiserver_net):
        fns = {"cpu": lambda n: -0.1, "disk": lambda n: 0.05}
        with pytest.raises(ValueError, match="negative"):
            mvasd(multiserver_net, 5, demand_functions=fns)

    def test_spline_model_plugs_in(self, multiserver_net):
        model = ServiceDemandModel([1, 10, 50], [0.5, 0.4, 0.3])
        fns = {"cpu": model, "disk": lambda n: 0.05}
        r = mvasd(multiserver_net, 60, demand_functions=fns)
        cpu_col = 0
        assert r.demands_used[0, cpu_col] == pytest.approx(0.5, rel=1e-6)
        # Past the last sample the eq. 14 clamp holds the plateau.
        assert r.demands_used[-1, cpu_col] == pytest.approx(0.3, rel=1e-6)

    def test_invalid_axis(self, multiserver_net):
        with pytest.raises(ValueError, match="demand_axis"):
            mvasd(multiserver_net, 5, demand_axis="users")


class TestSingleServerVariant:
    def test_solver_name(self, varying_net):
        assert mvasd(varying_net, 10, single_server=True).solver == "mvasd-single-server"

    def test_underestimates_contention_vs_multiserver(self, varying_net):
        ss = mvasd(varying_net, 60, single_server=True)
        ms = mvasd(varying_net, 60)
        # Normalized single-server sees less queueing at light-mid load.
        assert ss.throughput[10] >= ms.throughput[10]

    def test_same_saturation_limit(self, varying_net):
        ss = mvasd(varying_net, 400, single_server=True)
        ms = mvasd(varying_net, 400)
        assert ss.throughput[-1] == pytest.approx(ms.throughput[-1], rel=0.02)

    def test_no_marginals_recorded(self, varying_net):
        assert mvasd(varying_net, 10, single_server=True).marginal_probabilities is None


class TestThroughputAxis:
    def test_constant_curves_match_population_axis(self, multiserver_net):
        fns = {"cpu": lambda x: 0.4, "disk": lambda x: 0.05}
        pop = mvasd(multiserver_net, 80, demand_functions=fns)
        thr = mvasd(multiserver_net, 80, demand_functions=fns, demand_axis="throughput")
        np.testing.assert_allclose(pop.throughput, thr.throughput, rtol=1e-6)

    def test_fixed_point_consistency(self, multiserver_net):
        # demand defined on throughput axis: d(X) = 0.25 + 0.15 exp(-X/5)
        fns = {
            "cpu": lambda x: 0.25 + 0.15 * np.exp(-x / 5.0),
            "disk": lambda x: 0.05,
        }
        r = mvasd(multiserver_net, 100, demand_functions=fns, demand_axis="throughput")
        # The demand the solver used must equal the curve at the solved X.
        cpu_used = r.demands_used[:, 0]
        expected = 0.25 + 0.15 * np.exp(-r.throughput / 5.0)
        np.testing.assert_allclose(cpu_used, expected, rtol=1e-6)

    def test_solver_name(self, multiserver_net):
        fns = {"cpu": lambda x: 0.4, "disk": lambda x: 0.05}
        r = mvasd(multiserver_net, 5, demand_functions=fns, demand_axis="throughput")
        assert r.solver == "mvasd-throughput"
