"""Asymptotic and balanced-job bounds."""

import numpy as np
import pytest

from repro.core import (
    asymptotic_bounds,
    balanced_job_bounds,
    exact_multiserver_mva,
    exact_mva,
    mvasd,
)


class TestAsymptoticBounds:
    def test_exact_mva_inside_envelope(self, two_station_net):
        b = asymptotic_bounds(two_station_net, 150)
        r = exact_mva(two_station_net, 150)
        assert np.all(r.throughput <= b.throughput_upper * (1 + 1e-9))
        assert np.all(r.throughput >= b.throughput_lower * (1 - 1e-9))
        assert np.all(r.cycle_time >= b.cycle_time_lower * (1 - 1e-9))
        assert np.all(r.cycle_time <= b.cycle_time_upper * (1 + 1e-9))

    def test_multiserver_inside_envelope(self, manycore_net):
        b = asymptotic_bounds(manycore_net, 300)
        r = exact_multiserver_mva(manycore_net, 300)
        assert np.all(r.throughput <= b.throughput_upper * (1 + 1e-9))
        assert np.all(r.throughput >= b.throughput_lower * (1 - 1e-9))

    def test_knee(self, two_station_net):
        b = asymptotic_bounds(two_station_net, 10)
        assert b.knee == pytest.approx((0.13 + 1.0) / 0.08)

    def test_upper_bound_capped_at_bottleneck(self, two_station_net):
        b = asymptotic_bounds(two_station_net, 500)
        assert b.throughput_upper[-1] == pytest.approx(1 / 0.08)

    def test_multiserver_uses_per_server_demand(self, multiserver_net):
        b = asymptotic_bounds(multiserver_net, 500)
        # bottleneck is cpu at 0.4/4 = 0.1 per server -> cap 10/s
        assert b.throughput_upper[-1] == pytest.approx(10.0)


class TestBalancedJobBounds:
    def test_tighter_than_asymptotic(self, two_station_net):
        a = asymptotic_bounds(two_station_net, 100)
        bjb = balanced_job_bounds(two_station_net, 100)
        assert np.all(bjb.throughput_upper <= a.throughput_upper + 1e-12)
        assert np.all(bjb.throughput_lower >= a.throughput_lower - 1e-12)

    def test_exact_inside_bjb(self, two_station_net):
        bjb = balanced_job_bounds(two_station_net, 100)
        r = exact_mva(two_station_net, 100)
        assert np.all(r.throughput <= bjb.throughput_upper * (1 + 1e-9))
        assert np.all(r.throughput >= bjb.throughput_lower * (1 - 1e-9))

    def test_balanced_network_bounds_are_tight(self):
        from repro.core import ClosedNetwork, Station

        net = ClosedNetwork([Station(f"s{i}", 0.2) for i in range(3)], think_time=0.0)
        bjb = balanced_job_bounds(net, 40)
        r = exact_mva(net, 40)
        # For a perfectly balanced network both BJB branches coincide
        # with the exact solution.
        np.testing.assert_allclose(r.throughput, bjb.throughput_upper, rtol=1e-9)
        np.testing.assert_allclose(r.throughput, bjb.throughput_lower, rtol=1e-9)

    def test_mvasd_within_envelope_of_largest_demand(self, varying_net):
        # Evaluate the envelope at n=1 (largest demands along the decay).
        b = asymptotic_bounds(varying_net, 200, demand_level=1.0)
        r = mvasd(varying_net, 200)
        # Decaying demands can only raise throughput above the frozen
        # lower bound; the lower envelope must still hold.
        assert np.all(r.throughput >= b.throughput_lower * (1 - 1e-9))

    def test_rejects_bad_population(self, two_station_net):
        with pytest.raises(ValueError):
            asymptotic_bounds(two_station_net, 0)
        with pytest.raises(ValueError):
            balanced_job_bounds(two_station_net, 0)
