"""Trajectory plumbing: ``prefix()``, ``resume_from=``, and the
facade-level :class:`~repro.solvers.trajectory.TrajectoryStore`.

The load-bearing claim is *bit-identity*: because every MVA-family
recursion builds level ``n`` only from levels ``< n``, a prefix slice
and a resumed recursion must equal a direct solve exactly (parity 0.0),
not merely to tolerance.  The tests assert ``np.array_equal`` where the
claim is exact and fall back to the issue's ≤1e-10 bound only where a
documented tolerance exists.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.amva import schweitzer_amva
from repro.core.multiserver import MultiServerState
from repro.core.mva import exact_mva
from repro.core.mvasd import mvasd
from repro.solvers import Scenario, SolverCache, TrajectoryStore, solve
from repro.solvers.trajectory import resumable_method


def _varying_fns():
    return {
        "cpu": lambda n: 0.4 * np.exp(-np.asarray(n, float) / 80.0) + 0.1,
        "disk": lambda n: 0.05 + 0.0 * np.asarray(n, float),
    }


# -- MVAResult.prefix ---------------------------------------------------------


class TestPrefix:
    def test_prefix_equals_direct_solve_every_level(self, multiserver_net):
        full = exact_mva(multiserver_net, 60)
        for n in (1, 2, 30, 59):
            direct = exact_mva(multiserver_net, n)
            sliced = full.prefix(n)
            assert np.array_equal(sliced.throughput, direct.throughput)
            assert np.array_equal(sliced.queue_lengths, direct.queue_lengths)
            assert np.array_equal(sliced.utilizations, direct.utilizations)
            assert sliced.max_population == n

    def test_prefix_full_length_returns_self(self, two_station_net):
        full = exact_mva(two_station_net, 20)
        assert full.prefix(20) is full

    def test_prefix_slices_marginals_and_demands(self, multiserver_net):
        full = mvasd(multiserver_net, 40, demand_functions=_varying_fns())
        sliced = full.prefix(15)
        assert sliced.demands_used.shape == (15, 2)
        assert np.array_equal(sliced.demands_used, full.demands_used[:15])
        assert sliced.marginal_probabilities["cpu"].shape[0] == 15

    def test_prefix_drops_final_state(self, multiserver_net):
        full = mvasd(multiserver_net, 30, demand_functions=_varying_fns())
        assert full.final_state is not None
        assert full.prefix(10).final_state is None

    def test_prefix_out_of_range(self, two_station_net):
        full = exact_mva(two_station_net, 10)
        with pytest.raises(ValueError, match="prefix population"):
            full.prefix(0)
        with pytest.raises(ValueError, match="prefix population"):
            full.prefix(11)


# -- resume_from= -------------------------------------------------------------


class TestResume:
    @pytest.mark.parametrize("solver", [exact_mva, schweitzer_amva])
    def test_single_server_resume_bit_identical(self, multiserver_net, solver):
        full = solver(multiserver_net, 80)
        prev = solver(multiserver_net, 33)
        resumed = solver(multiserver_net, 80, resume_from=prev)
        assert np.array_equal(resumed.throughput, full.throughput)
        assert np.array_equal(resumed.response_time, full.response_time)
        assert np.array_equal(resumed.queue_lengths, full.queue_lengths)
        assert np.array_equal(resumed.residence_times, full.residence_times)
        assert np.array_equal(resumed.utilizations, full.utilizations)

    def test_mvasd_multiserver_resume_bit_identical(self, multiserver_net):
        fns = _varying_fns()
        full = mvasd(multiserver_net, 70, demand_functions=fns)
        prev = mvasd(multiserver_net, 25, demand_functions=fns)
        resumed = mvasd(multiserver_net, 70, demand_functions=fns, resume_from=prev)
        assert np.array_equal(resumed.throughput, full.throughput)
        assert np.array_equal(resumed.queue_lengths, full.queue_lengths)
        assert np.array_equal(resumed.demands_used, full.demands_used)
        for name in full.marginal_probabilities:
            assert np.array_equal(
                resumed.marginal_probabilities[name],
                full.marginal_probabilities[name],
            )

    def test_mvasd_single_server_resume_bit_identical(self, varying_net):
        full = mvasd(varying_net, 50, single_server=True)
        prev = mvasd(varying_net, 20, single_server=True)
        resumed = mvasd(varying_net, 50, single_server=True, resume_from=prev)
        assert np.array_equal(resumed.throughput, full.throughput)

    def test_resume_chain_is_transitive(self, multiserver_net):
        """Resume of a resume stays exact — the service's steady state."""
        fns = _varying_fns()
        full = mvasd(multiserver_net, 90, demand_functions=fns)
        r30 = mvasd(multiserver_net, 30, demand_functions=fns)
        r60 = mvasd(multiserver_net, 60, demand_functions=fns, resume_from=r30)
        r90 = mvasd(multiserver_net, 90, demand_functions=fns, resume_from=r60)
        assert np.array_equal(r90.throughput, full.throughput)
        assert np.array_equal(r90.queue_lengths, full.queue_lengths)

    def test_resume_rejects_prefix_without_final_state(self, multiserver_net):
        fns = _varying_fns()
        prev = mvasd(multiserver_net, 40, demand_functions=fns).prefix(20)
        with pytest.raises(ValueError, match="final_state"):
            mvasd(multiserver_net, 60, demand_functions=fns, resume_from=prev)

    def test_resume_rejects_mismatched_demands(self, two_station_net):
        prev = exact_mva(two_station_net, 10, demands=[0.05, 0.08])
        with pytest.raises(ValueError, match="demands differ"):
            exact_mva(two_station_net, 20, demands=[0.06, 0.08], resume_from=prev)

    def test_resume_rejects_deeper_previous(self, two_station_net):
        prev = exact_mva(two_station_net, 30)
        with pytest.raises(ValueError, match="already covers"):
            exact_mva(two_station_net, 10, resume_from=prev)

    def test_resume_rejects_station_count_mismatch(self, two_station_net, multiserver_net):
        prev = exact_mva(two_station_net, 10)
        with pytest.raises(ValueError, match="must be an MVAResult"):
            schweitzer_amva(two_station_net, 20, resume_from="nope")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            exact_mva(multiserver_net, 20, resume_from=prev)

    def test_mvasd_throughput_axis_not_resumable(self, varying_net):
        prev = mvasd(varying_net, 20)
        with pytest.raises(ValueError, match="demand_axis"):
            mvasd(varying_net, 40, demand_axis="throughput", resume_from=prev)

    def test_mvasd_variant_mismatch_rejected(self, multiserver_net):
        fns = _varying_fns()
        prev = mvasd(multiserver_net, 20, demand_functions=fns, single_server=True)
        with pytest.raises(ValueError):
            mvasd(multiserver_net, 40, demand_functions=fns, resume_from=prev)


class TestMultiServerStateSnapshot:
    def test_snapshot_restore_round_trip(self):
        a = MultiServerState(4, 30)
        b = None
        for n in range(1, 16):
            x = n / (1.0 + a.residence(n, 0.1))
            a.update(n, x, 0.1)
        snap = a.snapshot()
        b = MultiServerState.restore(4, 60, snap["p"], snap["level"])
        # identical continuation from both objects
        ra = a.residence(16, 0.1)
        rb = b.residence(16, 0.1)
        assert ra == rb
        assert a.queue_length() == b.queue_length()

    def test_restore_validates_shape_and_level(self):
        state = MultiServerState(2, 10)
        snap = state.snapshot()
        with pytest.raises(ValueError, match="max_population"):
            MultiServerState.restore(2, 3, np.zeros(5), 4)
        with pytest.raises(ValueError, match="shape"):
            MultiServerState.restore(2, 10, np.zeros(7), 4)
        MultiServerState.restore(2, 10, snap["p"], snap["level"])  # ok


# -- parity against the issue's explicit ≤1e-10 bound -------------------------


class TestFacadeTrajectoryParity:
    """Satellite (a): per-population trajectory on facade results."""

    @pytest.mark.parametrize("method", ["exact-mva", "schweitzer-amva", "mvasd"])
    def test_served_levels_match_direct_solves(self, varying_net, method):
        cache = SolverCache()
        # varying_net has a 4-server cpu; the single-server methods need
        # the explicit baseline acknowledgment since the capability gate.
        opts = {} if method == "mvasd" else {"single_server": True}
        deep = solve(Scenario(varying_net, 60), method=method, cache=cache, **opts)
        for n in (3, 17, 41, 60):
            served = solve(Scenario(varying_net, n), method=method, cache=cache, **opts)
            direct = solve(Scenario(varying_net, n), method=method, cache=None, **opts)
            assert np.max(np.abs(served.throughput - direct.throughput)) <= 1e-10
            assert np.max(np.abs(served.cycle_time - direct.cycle_time)) <= 1e-10
            # and in fact exactly equal
            assert np.array_equal(served.throughput, direct.throughput)
        assert deep.max_population == 60


# -- the TrajectoryStore itself ----------------------------------------------


class TestTrajectoryStore:
    def test_resumable_method_gate(self):
        assert resumable_method("exact-mva", {})
        assert resumable_method("mvasd", {})
        assert resumable_method("mvasd", {"demand_axis": "population"})
        assert not resumable_method("mvasd", {"demand_axis": "throughput"})
        assert not resumable_method("convolution", {})
        assert not resumable_method("exact-multiserver-mva", {})

    def test_prefix_and_extend_counters(self, varying_net):
        cache = SolverCache()
        solve(Scenario(varying_net, 50), method="mvasd", cache=cache)
        solve(Scenario(varying_net, 20), method="mvasd", cache=cache)  # prefix
        solve(Scenario(varying_net, 75), method="mvasd", cache=cache)  # extend
        stats = cache.stats()
        assert stats.trajectory_hits == 1
        assert stats.trajectory_extends == 1
        # served results are cached: repeats are plain memory hits
        before = cache.stats().hits
        solve(Scenario(varying_net, 20), method="mvasd", cache=cache)
        solve(Scenario(varying_net, 75), method="mvasd", cache=cache)
        assert cache.stats().hits == before + 2

    def test_different_demands_never_cross_serve(self, two_station_net):
        cache = SolverCache()
        other = two_station_net.with_demands([0.05, 0.09])
        solve(Scenario(two_station_net, 50), method="exact-mva", cache=cache)
        served = solve(Scenario(other, 30), method="exact-mva", cache=cache)
        direct = solve(Scenario(other, 30), method="exact-mva", cache=None)
        assert np.array_equal(served.throughput, direct.throughput)
        assert cache.stats().trajectory_hits == 0

    def test_shallow_offer_keeps_deeper_entry(self, varying_net):
        store = TrajectoryStore()
        deep = Scenario(varying_net, 60)
        shallow = Scenario(varying_net, 25)
        store.offer(deep, "mvasd", {}, mvasd(varying_net, 60))
        store.offer(shallow, "mvasd", {}, mvasd(varying_net, 25))
        kind, result = store.serve(Scenario(varying_net, 60), "mvasd", {})
        assert kind == "prefix" and result.max_population == 60

    def test_store_eviction_bound(self, two_station_net):
        store = TrajectoryStore(max_families=2)
        for scale in (0.8, 0.9, 1.0):
            net = two_station_net.with_demands([0.05 * scale, 0.08 * scale])
            store.offer(Scenario(net, 10), "exact-mva", {}, exact_mva(net, 10))
        assert len(store) == 2
        assert store.stats()["evictions"] == 1

    def test_store_never_raises(self, two_station_net):
        store = TrajectoryStore()
        # junk offers and serves degrade silently
        store.offer(object(), "exact-mva", {}, "not a result")
        assert store.serve(object(), "exact-mva", {}) is None
        assert store.stats()["errors"] >= 1

    def test_uncacheable_options_bypass_store(self, varying_net):
        cache = SolverCache()
        solve(Scenario(varying_net, 30), method="mvasd", cache=cache)
        # throughput axis is uncacheable and non-resumable: no serving
        solve(
            Scenario(varying_net, 20),
            method="mvasd",
            cache=cache,
            demand_axis="throughput",
        )
        assert cache.stats().trajectory_hits == 0
        assert cache.stats().uncacheable == 1
