"""Thomas tridiagonal solver."""

import numpy as np
import pytest

from repro.interpolate import solve_tridiagonal


def _dense(lower, diag, upper):
    n = len(diag)
    a = np.zeros((n, n))
    a[np.arange(n), np.arange(n)] = diag
    a[np.arange(1, n), np.arange(n - 1)] = lower
    a[np.arange(n - 1), np.arange(1, n)] = upper
    return a


class TestThomas:
    def test_matches_dense_solve(self):
        rng = np.random.default_rng(7)
        for n in (2, 3, 5, 20, 100):
            diag = rng.uniform(2.0, 4.0, n)
            lower = rng.uniform(-1.0, 1.0, n - 1)
            upper = rng.uniform(-1.0, 1.0, n - 1)
            rhs = rng.normal(size=n)
            x = solve_tridiagonal(lower, diag, upper, rhs)
            expected = np.linalg.solve(_dense(lower, diag, upper), rhs)
            np.testing.assert_allclose(x, expected, rtol=1e-10)

    def test_one_by_one(self):
        x = solve_tridiagonal([], [2.0], [], [6.0])
        np.testing.assert_allclose(x, [3.0])

    def test_identity(self):
        x = solve_tridiagonal(np.zeros(3), np.ones(4), np.zeros(3), [1, 2, 3, 4])
        np.testing.assert_allclose(x, [1, 2, 3, 4])

    def test_inputs_not_mutated(self):
        lower = np.array([1.0, 1.0])
        diag = np.array([4.0, 4.0, 4.0])
        upper = np.array([1.0, 1.0])
        rhs = np.array([1.0, 2.0, 3.0])
        solve_tridiagonal(lower, diag, upper, rhs)
        np.testing.assert_array_equal(diag, [4.0, 4.0, 4.0])
        np.testing.assert_array_equal(rhs, [1.0, 2.0, 3.0])

    def test_singular_pivot_rejected(self):
        with pytest.raises(ValueError, match="singular"):
            solve_tridiagonal([0.0], [0.0, 1.0], [0.0], [1.0, 1.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="off-diagonals"):
            solve_tridiagonal([1.0, 2.0], [1.0, 1.0], [1.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="rhs"):
            solve_tridiagonal([1.0], [1.0, 1.0], [1.0], [1.0])
        with pytest.raises(ValueError, match="empty"):
            solve_tridiagonal([], [], [], [])
