"""Unified solver registry, Scenario and the solve() facade."""

import numpy as np
import pytest

from repro.core.amva import schweitzer_amva
from repro.core.mva import exact_mva
from repro.core.mvasd import mvasd
from repro.core.network import ClosedNetwork, Station
from repro.solvers import (
    DuplicateSolverError,
    Scenario,
    SolverCapabilityError,
    SolverInputError,
    UnknownSolverError,
    WorkloadClass,
    auto_method,
    capability_matrix,
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solve_stack,
    solver_names,
    unregister_solver,
)


@pytest.fixture
def single_server_net():
    return ClosedNetwork(
        [Station("web", 0.02), Station("db", 0.05)], think_time=1.0
    )


@pytest.fixture
def multiserver_net():
    return ClosedNetwork(
        [Station("web", 0.08, servers=4), Station("db", 0.05)], think_time=1.0
    )


@pytest.fixture
def varying_net():
    return ClosedNetwork(
        [
            Station("web", lambda n: 0.02 + 0.0002 * n, servers=4),
            Station("db", lambda n: 0.05 + 0.0001 * n),
        ],
        think_time=1.0,
    )


class TestRegistry:
    def test_builtin_family_registered(self):
        names = solver_names()
        for expected in (
            "exact-mva",
            "exact-multiserver-mva",
            "mvasd",
            "schweitzer-amva",
            "linearizer",
            "ld-mva",
            "convolution",
            "bounds",
            "interval-mva",
            "exact-multiclass",
            "multiclass-mvasd",
        ):
            assert expected in names

    def test_duplicate_name_rejected(self):
        with pytest.raises(DuplicateSolverError):

            @register_solver("exact-mva", summary="clash")
            def _clash(scenario, **options):  # pragma: no cover
                return None

    def test_register_and_unregister_roundtrip(self):
        @register_solver("test-solver", summary="temp", cost=999)
        def _temp(scenario, **options):
            return "ran"

        try:
            spec = get_solver("test-solver")
            assert spec.summary == "temp"
            assert spec.solve(None) == "ran"
        finally:
            removed = unregister_solver("test-solver")
        assert removed.name == "test-solver"
        with pytest.raises(UnknownSolverError):
            get_solver("test-solver")

    def test_unknown_lookup_names_registered(self):
        with pytest.raises(UnknownSolverError, match="exact-mva"):
            get_solver("definitely-not-a-solver")

    def test_list_solvers_cost_ordered(self):
        costs = [spec.cost for spec in list_solvers()]
        assert costs == sorted(costs)

    def test_capability_matrix_lists_every_solver(self):
        matrix = capability_matrix()
        for name in solver_names():
            assert name in matrix

    def test_capability_flags_on_mvasd(self):
        spec = get_solver("mvasd")
        assert spec.multiserver and spec.varying_demands
        assert not spec.exact and not spec.multiclass
        assert spec.batched_kernel == "mvasd"


class TestScenario:
    def test_demand_sources_are_exclusive(self, single_server_net):
        with pytest.raises(SolverInputError, match="at most one demand source"):
            Scenario(
                single_server_net,
                10,
                demands=(0.02, 0.05),
                demand_functions={"web": lambda n: 0.02, "db": lambda n: 0.05},
            )

    def test_demand_length_checked_once(self, single_server_net):
        with pytest.raises(SolverInputError, match="expected 2 demands"):
            Scenario(single_server_net, 10, demands=(0.02,))

    def test_bad_population_rejected(self, single_server_net):
        with pytest.raises(SolverInputError, match="max_population"):
            Scenario(single_server_net, 0)

    def test_demand_matrix_shape_checked(self, single_server_net):
        with pytest.raises(SolverInputError, match="shape"):
            Scenario(single_server_net, 10, demand_matrix=np.ones((5, 2)))

    def test_structure_flags(self, single_server_net, multiserver_net, varying_net):
        assert not Scenario(single_server_net, 5).is_multiserver
        assert Scenario(multiserver_net, 5).is_multiserver
        assert not Scenario(multiserver_net, 5).has_varying_demands
        assert Scenario(varying_net, 5).has_varying_demands

    def test_fixed_demands_freeze_varying_at_level(self, varying_net):
        sc = Scenario(varying_net, 20, demand_level=10.0)
        np.testing.assert_allclose(
            sc.fixed_demands(), [0.02 + 0.0002 * 10, 0.05 + 0.0001 * 10]
        )

    def test_think_time_override(self, single_server_net):
        sc = Scenario(single_server_net, 5, think_time=2.5)
        assert sc.think == 2.5
        assert sc.resolved_network().think_time == 2.5
        assert single_server_net.think_time == 1.0  # untouched

    def test_with_overrides_scales_demands(self, single_server_net):
        sc = Scenario(single_server_net, 10).with_overrides(demand_scale=2.0)
        np.testing.assert_allclose(sc.fixed_demands(), [0.04, 0.10])

    def test_demand_matrix_roundtrip(self, single_server_net):
        matrix = np.tile([0.02, 0.05], (10, 1))
        sc = Scenario(single_server_net, 10, demand_matrix=matrix)
        np.testing.assert_allclose(sc.resolved_demand_matrix(), matrix)
        result = solve(sc, method="mvasd")
        reference = exact_mva(single_server_net, 10)
        np.testing.assert_allclose(
            result.throughput, reference.throughput, atol=1e-10
        )


class TestAutoSelection:
    def test_constant_single_server_picks_exact_mva(self, single_server_net):
        assert auto_method(Scenario(single_server_net, 50)) == "exact-mva"

    def test_constant_multiserver_picks_exact_multiserver(self, multiserver_net):
        assert auto_method(Scenario(multiserver_net, 50)) == "exact-multiserver-mva"

    def test_varying_multiserver_picks_mvasd(self, varying_net):
        assert auto_method(Scenario(varying_net, 50)) == "mvasd"

    def test_varying_single_server_picks_mvasd(self):
        net = ClosedNetwork(
            [Station("web", lambda n: 0.02 + 0.0001 * n)], think_time=1.0
        )
        assert auto_method(Scenario(net, 50)) == "mvasd"

    def test_huge_population_falls_back_to_amva(self, single_server_net, multiserver_net):
        assert (
            auto_method(Scenario(single_server_net, 100), exact_limit=50)
            == "schweitzer-amva"
        )
        assert (
            auto_method(Scenario(multiserver_net, 100), exact_limit=50)
            == "approx-multiserver-mva"
        )

    def test_multiclass_selection(self, single_server_net):
        classes = (
            WorkloadClass("a", 3, {"web": 0.02, "db": 0.05}, think_time=1.0),
            WorkloadClass("b", 2, {"web": 0.01, "db": 0.04}, think_time=0.5),
        )
        sc = Scenario(single_server_net, 5, classes=classes)
        assert auto_method(sc) == "exact-multiclass"
        varying = (
            WorkloadClass("a", 3, {"web": lambda n: 0.02, "db": 0.05}, 1.0),
        )
        assert (
            auto_method(Scenario(single_server_net, 3, classes=varying))
            == "multiclass-mvasd"
        )

    def test_solve_auto_runs_selected_method(self, varying_net):
        result = solve(Scenario(varying_net, 30))
        assert result.solver == "mvasd"


class TestFacadeLegacyParity:
    """solve(scenario, method=m) must agree with the legacy entry point."""

    def test_exact_mva_parity(self, single_server_net):
        got = solve(Scenario(single_server_net, 40), method="exact-mva")
        ref = exact_mva(single_server_net, 40)
        np.testing.assert_allclose(got.throughput, ref.throughput, atol=1e-10)
        np.testing.assert_allclose(got.queue_lengths, ref.queue_lengths, atol=1e-10)

    def test_every_trajectory_method_matches_its_legacy(self, multiserver_net):
        import importlib

        sc = Scenario(multiserver_net, 25)
        for spec in list_solvers():
            if spec.returns != "trajectory" or spec.legacy is None:
                continue
            module_path, fn_name = spec.legacy.rsplit(".", 1)
            legacy_fn = getattr(importlib.import_module(module_path), fn_name)
            # Single-server methods need the explicit baseline flag on a
            # multi-server net; their legacy wrappers silently do the same.
            opts = {} if spec.multiserver else {"single_server": True}
            got = solve(sc, method=spec.name, **opts)
            ref = legacy_fn(multiserver_net, 25)
            np.testing.assert_allclose(
                got.throughput, ref.throughput, atol=1e-10,
                err_msg=f"{spec.name} disagrees with {spec.legacy}",
            )
            np.testing.assert_allclose(
                got.response_time, ref.response_time, atol=1e-10,
                err_msg=f"{spec.name} disagrees with {spec.legacy}",
            )

    def test_mvasd_options_forwarded(self, varying_net):
        got = solve(Scenario(varying_net, 20), method="mvasd", single_server=True)
        ref = mvasd(varying_net, 20, single_server=True)
        assert got.solver == ref.solver == "mvasd-single-server"
        np.testing.assert_allclose(got.throughput, ref.throughput, atol=1e-10)


class TestSingleClassParity:
    """Every single-class solver vs exact_mva on single-server constant-demand
    networks: exact solvers to 1e-10 over the whole trajectory, approximate
    solvers exactly at N=1 (where no approximation is involved)."""

    def test_exact_solvers_match_exact_mva(self, single_server_net):
        ref = exact_mva(single_server_net, 30)
        sc = Scenario(single_server_net, 30)
        for spec in list_solvers():
            if spec.returns != "trajectory" or spec.multiclass or not spec.exact:
                continue
            got = solve(sc, method=spec.name)
            np.testing.assert_allclose(
                got.throughput, ref.throughput, atol=1e-10,
                err_msg=f"{spec.name} deviates from exact-mva",
            )
            np.testing.assert_allclose(
                got.cycle_time, ref.cycle_time, atol=1e-10,
                err_msg=f"{spec.name} deviates from exact-mva",
            )

    def test_approximate_solvers_exact_at_n1(self, single_server_net):
        ref = exact_mva(single_server_net, 1)
        sc = Scenario(single_server_net, 1)
        for spec in list_solvers():
            if spec.returns != "trajectory" or spec.multiclass or spec.exact:
                continue
            got = solve(sc, method=spec.name)
            np.testing.assert_allclose(
                got.throughput, ref.throughput, atol=1e-10,
                err_msg=f"{spec.name} wrong at N=1",
            )


class TestCapabilityEnforcement:
    def test_multiclass_scenario_rejects_single_class_solver(self, single_server_net):
        classes = (WorkloadClass("a", 3, {"web": 0.02, "db": 0.05}, 1.0),)
        sc = Scenario(single_server_net, 3, classes=classes)
        with pytest.raises(SolverCapabilityError, match="single-class"):
            solve(sc, method="exact-mva")

    def test_single_class_scenario_rejects_multiclass_solver(self, single_server_net):
        with pytest.raises(SolverCapabilityError, match="classes"):
            solve(Scenario(single_server_net, 5), method="exact-multiclass")

    def test_multiclass_solver_rejects_multiserver_network(self, multiserver_net):
        classes = (WorkloadClass("a", 3, {"web": 0.08, "db": 0.05}, 1.0),)
        sc = Scenario(multiserver_net, 3, classes=classes)
        with pytest.raises(SolverCapabilityError, match="Seidmann"):
            solve(sc, method="exact-multiclass")

    def test_bounds_method_returns_envelope(self, multiserver_net):
        result = solve(Scenario(multiserver_net, 30), method="bounds")
        assert hasattr(result, "knee")
        assert result.throughput_upper.shape == (30,)

    def test_error_messages_name_the_solver(self, single_server_net):
        with pytest.raises(SolverInputError, match="scenario: expected 2 demands"):
            Scenario(single_server_net, 5, demands=(0.1, 0.2, 0.3))
        with pytest.raises(ValueError, match="exact-mva: expected 2 demands"):
            exact_mva(single_server_net, 5, demands=[0.1])

    def test_multiserver_scenario_rejects_single_server_solver(self, multiserver_net):
        # a fixed-demand single-server path would silently model the
        # 4-core CPU as one server — refuse, and name the capable method
        with pytest.raises(
            SolverCapabilityError, match="exact-mva: scenario has multi-server"
        ):
            solve(Scenario(multiserver_net, 10), method="exact-mva")
        with pytest.raises(SolverCapabilityError, match="exact-multiserver-mva"):
            solve(Scenario(multiserver_net, 10), method="schweitzer-amva")

    def test_single_server_escape_hatch(self, multiserver_net):
        # the deliberate single-server baseline stays one option away
        result = solve(
            Scenario(multiserver_net, 10),
            method="exact-mva",
            single_server=True,
            cache=None,
        )
        assert result.solver == "exact-mva"

    def test_multiserver_stack_rejected_without_escape_hatch(self, multiserver_net):
        stack = [Scenario(multiserver_net, 10)] * 2
        with pytest.raises(SolverCapabilityError, match="multi-server"):
            solve_stack(stack, method="exact-mva", cache=None)
        result = solve_stack(stack, method="exact-mva", single_server=True, cache=None)
        assert result.n_scenarios == 2

    def test_rate_table_scenario_rejects_fixed_demand_solver(self, single_server_net):
        sc = Scenario(
            single_server_net, 5, rate_tables={"web": [50.0, 51.0, 52.0, 53.0, 54.0]}
        )
        with pytest.raises(
            SolverCapabilityError, match="nearest load-dependent method: 'ld-mva'"
        ):
            solve(sc, method="exact-mva")
        with pytest.raises(SolverCapabilityError, match="load-dependent rate tables"):
            solve_stack([sc, sc], method="schweitzer-amva", cache=None)

    def test_rate_table_scenario_auto_routes_to_ld_mva(self, single_server_net):
        sc = Scenario(
            single_server_net, 5, rate_tables={"web": [50.0, 51.0, 52.0, 53.0, 54.0]}
        )
        assert auto_method(sc) == "ld-mva"
        result = solve(sc, cache=None)
        assert result.solver == "exact-load-dependent-mva"

    def test_load_dependent_column_in_matrix(self):
        matrix = capability_matrix()
        header = matrix.splitlines()[0]
        assert "load dependent" in header
        ld_row = next(
            line for line in matrix.splitlines() if line.startswith("ld-mva")
        )
        assert "yes" in ld_row


class TestBatchedBackend:
    def test_batched_equals_scalar_on_stacked_scenarios(self, single_server_net):
        base = Scenario(single_server_net, 30)
        stack = [base, base.with_overrides(demand_scale=1.5)]
        batched = solve_stack(stack, method="exact-mva", backend="batched")
        scalar = solve_stack(stack, method="exact-mva", backend="scalar")
        np.testing.assert_allclose(
            batched.throughput, scalar.throughput, atol=1e-10
        )
        np.testing.assert_allclose(
            batched.queue_lengths, scalar.queue_lengths, atol=1e-10
        )

    def test_batched_mvasd_stack_matches_scalar_solves(self, varying_net):
        base = Scenario(varying_net, 25)
        stack = [base, base.with_overrides(demand_scale=0.8)]
        batched = solve_stack(stack, method="mvasd")
        for i, sc in enumerate(stack):
            ref = solve(sc, method="mvasd")
            np.testing.assert_allclose(
                batched.throughput[i], ref.throughput, atol=1e-10
            )

    def test_single_scenario_batched_backend(self, single_server_net):
        sc = Scenario(single_server_net, 20)
        got = solve(sc, method="exact-mva", backend="batched")
        ref = exact_mva(single_server_net, 20)
        np.testing.assert_allclose(got.throughput, ref.throughput, atol=1e-10)

    def test_auto_stack_routes_multiserver_to_mvasd_kernel(self, multiserver_net):
        sc = Scenario(multiserver_net, 15)
        batch = solve_stack([sc, sc.with_overrides(think_time=2.0)])
        assert batch.solver == "batched-mvasd"
        ref = mvasd(multiserver_net, 15)
        np.testing.assert_allclose(batch.throughput[0], ref.throughput, atol=1e-10)

    def test_scalar_fallback_for_kernel_less_method(self, single_server_net):
        sc = Scenario(single_server_net, 10)
        batch = solve_stack([sc, sc], method="linearizer")
        # The label names the concrete scalar solver, not the registry alias.
        assert batch.solver == "stacked-linearizer-amva"
        assert batch.backend == "serial"
        assert batch.throughput.shape == (2, 10)
        np.testing.assert_allclose(batch.throughput[0], batch.throughput[1])

    def test_forcing_batched_without_kernel_errors(self, single_server_net):
        sc = Scenario(single_server_net, 10)
        with pytest.raises(SolverCapabilityError, match="no batched kernel"):
            solve_stack([sc, sc], method="linearizer", backend="batched")

    def test_mismatched_topologies_rejected(self, single_server_net, multiserver_net):
        with pytest.raises(SolverInputError, match="topology"):
            solve_stack(
                [Scenario(single_server_net, 10), Scenario(multiserver_net, 10)]
            )

    def test_schweitzer_batched_parity(self, single_server_net):
        sc = Scenario(single_server_net, 20)
        batched = solve_stack([sc], method="schweitzer-amva", backend="batched")
        ref = schweitzer_amva(single_server_net, 20)
        np.testing.assert_allclose(
            batched.scenario(0).throughput, ref.throughput, atol=1e-10
        )


class TestGridIntegration:
    def test_scenario_grid_materializes_and_stacks(self, single_server_net):
        from repro.engine import ScenarioGrid

        grid = ScenarioGrid.product(demand_scale=(0.8, 1.0, 1.2), think_time=(0.5, 1.0))
        scenarios = grid.scenarios(Scenario(single_server_net, 20))
        assert len(scenarios) == 6
        batch = solve_stack(scenarios)
        assert batch.throughput.shape == (6, 20)
        # grid order: last axis fastest; entry 1 is scale=0.8, think=1.0
        ref = exact_mva(single_server_net.with_think_time(1.0), 20, demands=[0.016, 0.04])
        np.testing.assert_allclose(batch.throughput[1], ref.throughput, atol=1e-10)

    def test_unknown_grid_axis_rejected(self, single_server_net):
        from repro.engine import ScenarioGrid

        grid = ScenarioGrid.product(duration=(10, 20))
        with pytest.raises(ValueError, match="override axes"):
            grid.scenarios(Scenario(single_server_net, 5))
