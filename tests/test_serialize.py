"""Measurement archives and demand-table JSON round-trips."""

import json

import numpy as np
import pytest

from repro.core import mvasd
from repro.loadtest.serialize import (
    MeasurementArchive,
    archive_sweep,
    demand_table_from_dict,
    demand_table_to_dict,
)


class TestDemandTableRoundTrip:
    def test_roundtrip_preserves_curves(self, mini_sweep):
        table = mini_sweep.demand_table()
        data = demand_table_to_dict(table)
        rebuilt = demand_table_from_dict(json.loads(json.dumps(data)))
        probe = np.linspace(1, 60, 17)
        for name, model in table.models.items():
            np.testing.assert_allclose(rebuilt.models[name](probe), model(probe), rtol=1e-12)

    def test_kind_and_axis_preserved(self, mini_sweep):
        table = mini_sweep.demand_table(kind="pchip", axis="throughput")
        rebuilt = demand_table_from_dict(demand_table_to_dict(table))
        assert rebuilt.axis == "throughput"
        assert all(m.kind == "pchip" for m in rebuilt.models.values())

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            demand_table_from_dict({"schema": 99})


class TestMeasurementArchive:
    def test_archive_fields(self, mini_sweep):
        arc = archive_sweep(mini_sweep)
        assert arc.application == "MiniApp"
        np.testing.assert_array_equal(arc.levels, mini_sweep.levels)
        np.testing.assert_allclose(arc.throughput, mini_sweep.throughput)

    def test_json_roundtrip(self, mini_sweep, tmp_path):
        arc = archive_sweep(mini_sweep)
        path = tmp_path / "campaign.json"
        arc.save(path)
        loaded = MeasurementArchive.load(path)
        np.testing.assert_allclose(loaded.cycle_time, arc.cycle_time)
        np.testing.assert_allclose(
            loaded.demand_samples["db.disk"], arc.demand_samples["db.disk"]
        )

    def test_archived_demand_table_drives_mvasd(self, mini_sweep, tmp_path):
        # The whole point: predict from an archived campaign months later.
        arc = archive_sweep(mini_sweep)
        path = tmp_path / "campaign.json"
        arc.save(path)
        loaded = MeasurementArchive.load(path)
        table = loaded.demand_table()
        result = mvasd(
            mini_sweep.application.network, 50, demand_functions=table.functions()
        )
        live = mvasd(
            mini_sweep.application.network,
            50,
            demand_functions=mini_sweep.demand_table().functions(),
        )
        np.testing.assert_allclose(result.throughput, live.throughput, rtol=1e-9)

    def test_throughput_axis_table(self, mini_sweep):
        arc = archive_sweep(mini_sweep)
        table = arc.demand_table(axis="throughput")
        assert table.axis == "throughput"
        with pytest.raises(ValueError):
            arc.demand_table(axis="users")

    def test_length_validation(self):
        with pytest.raises(ValueError, match="throughput"):
            MeasurementArchive(
                application="x",
                workflow="w",
                levels=np.array([1, 2]),
                throughput=np.array([1.0]),
                response_time=np.array([0.1, 0.2]),
                cycle_time=np.array([1.1, 1.2]),
                demand_samples={},
            )

    def test_schema_check(self):
        with pytest.raises(ValueError, match="schema"):
            MeasurementArchive.from_dict({"schema": 0})
