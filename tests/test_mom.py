"""Method of Moments: exact parity, feasibility limits, auto-selection."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClosedNetwork, Station, exact_multiclass_mva
from repro.core.mom import method_of_moments, mom_state_count
from repro.solvers import Scenario, WorkloadClass, list_solvers, solve
from repro.solvers.facade import (
    EXACT_MULTICLASS_LATTICE_LIMIT,
    MOM_STATE_LIMIT,
    auto_method,
)


@st.composite
def _mom_case(draw):
    k = draw(st.integers(1, 3))
    c = draw(st.integers(1, 3))
    demands = draw(
        st.lists(
            st.lists(st.floats(0.005, 0.3), min_size=c, max_size=c),
            min_size=k,
            max_size=k,
        )
    )
    pops = draw(st.lists(st.integers(0, 5), min_size=c, max_size=c))
    think = draw(st.lists(st.floats(0.0, 2.0), min_size=c, max_size=c))
    kinds = draw(
        st.lists(st.sampled_from(["queue", "delay"]), min_size=k, max_size=k)
    )
    return demands, pops, think, kinds


class TestExactParity:
    @given(case=_mom_case())
    @settings(max_examples=60, deadline=None)
    def test_matches_lattice_recursion(self, case):
        demands, pops, think, kinds = case
        mom = method_of_moments(demands, pops, think, station_kinds=kinds)
        exact = exact_multiclass_mva(demands, pops, think, station_kinds=kinds)
        np.testing.assert_allclose(mom.throughput, exact.throughput, atol=1e-8)
        np.testing.assert_allclose(
            mom.queue_lengths, exact.queue_lengths, atol=1e-8
        )
        np.testing.assert_allclose(
            mom.queue_lengths_by_class, exact.queue_lengths_by_class, atol=1e-8
        )
        np.testing.assert_allclose(
            mom.utilizations, exact.utilizations, atol=1e-8
        )
        np.testing.assert_allclose(
            mom.response_time, exact.response_time, atol=1e-8
        )

    def test_larger_lattice_still_exact(self):
        demands = [[0.02, 0.01, 0.03], [0.05, 0.04, 0.02], [0.01, 0.03, 0.04]]
        pops = [9, 8, 7]  # lattice: 10 * 9 * 8 = 720 points
        think = [1.0, 0.5, 0.2]
        mom = method_of_moments(demands, pops, think)
        exact = exact_multiclass_mva(demands, pops, think)
        np.testing.assert_allclose(mom.throughput, exact.throughput, atol=1e-8)
        np.testing.assert_allclose(
            mom.queue_lengths, exact.queue_lengths, atol=1e-8
        )

    def test_delay_stations_fold_into_think(self):
        demands = [[0.02, 0.01], [0.08, 0.05]]
        res_delay = method_of_moments(
            demands, [4, 3], [1.0, 0.5], station_kinds=["queue", "delay"]
        )
        # A delay demand is equivalent to extra think time.
        res_think = method_of_moments(
            [[0.02, 0.01]], [4, 3], [1.08, 0.55], station_kinds=["queue"]
        )
        np.testing.assert_allclose(
            res_delay.throughput, res_think.throughput, atol=1e-10
        )

    def test_zero_population(self):
        res = method_of_moments([[0.1]], [0], [1.0])
        assert res.throughput[0] == 0.0
        assert res.queue_lengths[0] == 0.0


class TestValidation:
    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            method_of_moments([0.1, 0.2], [1], [1.0])
        with pytest.raises(ValueError):
            method_of_moments([[0.1]], [-1], [1.0])
        with pytest.raises(ValueError):
            method_of_moments([[0.1]], [1], [-1.0])
        with pytest.raises(ValueError):
            method_of_moments([[np.nan]], [1], [1.0])
        with pytest.raises(ValueError):
            method_of_moments([[0.1]], [1], [1.0], station_kinds=["lift"])


class TestStateCount:
    def test_binomial_formula(self):
        assert mom_state_count(10, 2) == math.comb(12, 2)
        assert mom_state_count(0, 3) == 1
        assert mom_state_count(5, 0) == 1


class TestRegistryIntegration:
    @pytest.fixture
    def net(self):
        return ClosedNetwork(
            [Station("web", demand=0.02), Station("db", demand=0.05)],
            think_time=1.0,
        )

    def test_registered(self):
        spec = next(s for s in list_solvers() if s.name == "method-of-moments")
        assert spec.multiclass and spec.exact
        assert spec.returns == "multiclass"

    def test_solve_matches_exact_multiclass(self, net):
        classes = (
            WorkloadClass("a", 3, {"web": 0.02, "db": 0.05}, think_time=1.0),
            WorkloadClass("b", 2, {"web": 0.01, "db": 0.04}, think_time=0.5),
        )
        sc = Scenario(net, 5, classes=classes)
        mom = solve(sc, method="method-of-moments", cache=None)
        exact = solve(sc, method="exact-multiclass", cache=None)
        np.testing.assert_allclose(mom.throughput, exact.throughput, atol=1e-8)
        np.testing.assert_allclose(
            mom.queue_lengths, exact.queue_lengths, atol=1e-8
        )

    def test_auto_selected_past_lattice_limit(self, net):
        # Six classes of 9 => lattice 10^6 > EXACT_MULTICLASS_LATTICE_LIMIT,
        # but binom(54 + 2, 2) stays tiny: MoM keeps exactness.
        classes = tuple(
            WorkloadClass(
                f"c{i}", 9, {"web": 0.01 + 0.001 * i, "db": 0.02}, think_time=1.0
            )
            for i in range(6)
        )
        sc = Scenario(net, 54, classes=classes)
        lattice = 10**6
        assert lattice > EXACT_MULTICLASS_LATTICE_LIMIT
        assert mom_state_count(54, 2) <= MOM_STATE_LIMIT
        assert auto_method(sc) == "method-of-moments"

    def test_falls_back_to_amva_when_mom_infeasible(self, net):
        # Huge total population: even the MoM state count blows past the
        # feasibility limit, so auto-selection degrades to Bard-Schweitzer.
        classes = tuple(
            WorkloadClass(
                f"c{i}", 2000, {"web": 0.01, "db": 0.02}, think_time=1.0
            )
            for i in range(4)
        )
        sc = Scenario(net, 8000, classes=classes)
        assert mom_state_count(8000, 2) > MOM_STATE_LIMIT
        assert auto_method(sc) == "multiclass-mvasd"

    def test_small_lattice_still_prefers_plain_exact(self, net):
        classes = (
            WorkloadClass("a", 3, {"web": 0.02, "db": 0.05}, think_time=1.0),
        )
        assert auto_method(Scenario(net, 3, classes=classes)) == "exact-multiclass"
