"""Exact load-dependent MVA."""

import numpy as np
import pytest

from repro.core import (
    ClosedNetwork,
    Station,
    exact_load_dependent_mva,
    exact_mva,
    multiserver_rates,
)


class TestMultiserverRates:
    def test_rate_law(self):
        mu = multiserver_rates(0.5, 3)
        assert mu(1) == pytest.approx(2.0)
        assert mu(2) == pytest.approx(4.0)
        assert mu(3) == pytest.approx(6.0)
        assert mu(10) == pytest.approx(6.0)  # capped at C servers

    def test_validation(self):
        with pytest.raises(ValueError):
            multiserver_rates(0.0, 3)
        with pytest.raises(ValueError):
            multiserver_rates(0.5, 0)


class TestExactLoadDependent:
    def test_reduces_to_exact_mva_for_single_servers(self, two_station_net):
        ld = exact_load_dependent_mva(two_station_net, 60)
        ex = exact_mva(two_station_net, 60)
        np.testing.assert_allclose(ld.throughput, ex.throughput, rtol=1e-10)
        np.testing.assert_allclose(ld.queue_lengths, ex.queue_lengths, rtol=1e-8, atol=1e-12)

    def test_littles_law(self, multiserver_net):
        ld = exact_load_dependent_mva(multiserver_net, 80)
        assert ld.littles_law_residual().max() < 1e-12

    def test_final_marginals_sum_to_one(self, multiserver_net):
        ld = exact_load_dependent_mva(multiserver_net, 40)
        p = ld.marginal_probabilities["cpu"][0]
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(p >= -1e-12)

    def test_custom_rate_function(self):
        # A "disk" whose service rate doubles once 2+ jobs are queued
        # (elevator scheduling): faster than the fixed-rate disk.
        net = ClosedNetwork([Station("disk", 0.1)], think_time=1.0)
        fast = exact_load_dependent_mva(
            net, 30, rates={"disk": lambda j: (1 if j == 1 else 2) / 0.1}
        )
        slow = exact_load_dependent_mva(net, 30)
        assert fast.throughput[-1] > slow.throughput[-1]

    def test_custom_rates_must_be_positive(self):
        net = ClosedNetwork([Station("disk", 0.1)], think_time=1.0)
        with pytest.raises(ValueError, match="positive"):
            exact_load_dependent_mva(net, 5, rates={"disk": lambda j: 0.0})

    def test_delay_station_passthrough(self):
        net = ClosedNetwork(
            [Station("cpu", 0.2), Station("lag", 1.5, kind="delay")], think_time=0.0
        )
        ld = exact_load_dependent_mva(net, 30)
        ex = exact_mva(net, 30)
        np.testing.assert_allclose(ld.throughput, ex.throughput, rtol=1e-10)

    def test_matches_convolution_at_c4(self, multiserver_net):
        from repro.core.convolution import convolution_mva

        ld = exact_load_dependent_mva(multiserver_net, 120)
        conv = convolution_mva(multiserver_net, 120)
        np.testing.assert_allclose(ld.throughput, conv.throughput, rtol=1e-8)
