"""Exact load-dependent MVA."""

import numpy as np
import pytest

from repro.core import (
    ClosedNetwork,
    Station,
    exact_load_dependent_mva,
    exact_mva,
    multiserver_rates,
)
from repro.core.ld_mva import _reference_exact_ld_mva, build_rate_tables


class TestMultiserverRates:
    def test_rate_law(self):
        mu = multiserver_rates(0.5, 3)
        assert mu(1) == pytest.approx(2.0)
        assert mu(2) == pytest.approx(4.0)
        assert mu(3) == pytest.approx(6.0)
        assert mu(10) == pytest.approx(6.0)  # capped at C servers

    def test_validation(self):
        with pytest.raises(ValueError):
            multiserver_rates(0.0, 3)
        with pytest.raises(ValueError):
            multiserver_rates(0.5, 0)


class TestExactLoadDependent:
    def test_reduces_to_exact_mva_for_single_servers(self, two_station_net):
        ld = exact_load_dependent_mva(two_station_net, 60)
        ex = exact_mva(two_station_net, 60)
        np.testing.assert_allclose(ld.throughput, ex.throughput, rtol=1e-10)
        np.testing.assert_allclose(ld.queue_lengths, ex.queue_lengths, rtol=1e-8, atol=1e-12)

    def test_littles_law(self, multiserver_net):
        ld = exact_load_dependent_mva(multiserver_net, 80)
        assert ld.littles_law_residual().max() < 1e-12

    def test_final_marginals_sum_to_one(self, multiserver_net):
        ld = exact_load_dependent_mva(multiserver_net, 40)
        p = ld.marginal_probabilities["cpu"][0]
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(p >= -1e-12)

    def test_custom_rate_function(self):
        # A "disk" whose service rate doubles once 2+ jobs are queued
        # (elevator scheduling): faster than the fixed-rate disk.
        net = ClosedNetwork([Station("disk", 0.1)], think_time=1.0)
        fast = exact_load_dependent_mva(
            net, 30, rates={"disk": lambda j: (1 if j == 1 else 2) / 0.1}
        )
        slow = exact_load_dependent_mva(net, 30)
        assert fast.throughput[-1] > slow.throughput[-1]

    def test_custom_rates_must_be_positive(self):
        net = ClosedNetwork([Station("disk", 0.1)], think_time=1.0)
        with pytest.raises(ValueError, match="positive"):
            exact_load_dependent_mva(net, 5, rates={"disk": lambda j: 0.0})

    def test_delay_station_passthrough(self):
        net = ClosedNetwork(
            [Station("cpu", 0.2), Station("lag", 1.5, kind="delay")], think_time=0.0
        )
        ld = exact_load_dependent_mva(net, 30)
        ex = exact_mva(net, 30)
        np.testing.assert_allclose(ld.throughput, ex.throughput, rtol=1e-10)

    def test_matches_convolution_at_c4(self, multiserver_net):
        from repro.core.convolution import convolution_mva

        ld = exact_load_dependent_mva(multiserver_net, 120)
        conv = convolution_mva(multiserver_net, 120)
        np.testing.assert_allclose(ld.throughput, conv.throughput, rtol=1e-8)


class TestVectorizedParity:
    """The vectorized recursion against the scalar reference, <= 1e-12."""

    def _assert_parity(self, net, n, **kwargs):
        vec = exact_load_dependent_mva(net, n, **kwargs)
        ref = _reference_exact_ld_mva(net, n, **kwargs)
        np.testing.assert_allclose(vec.throughput, ref.throughput, rtol=1e-12, atol=0)
        np.testing.assert_allclose(
            vec.response_time, ref.response_time, rtol=1e-12, atol=0
        )
        np.testing.assert_allclose(
            vec.queue_lengths, ref.queue_lengths, rtol=1e-12, atol=1e-15
        )
        for name in vec.marginal_probabilities:
            np.testing.assert_allclose(
                vec.marginal_probabilities[name],
                ref.marginal_probabilities[name],
                rtol=1e-12,
                atol=1e-15,
            )

    def test_multiserver(self, multiserver_net):
        self._assert_parity(multiserver_net, 90)

    def test_manycore(self, manycore_net):
        self._assert_parity(manycore_net, 120)

    def test_delay_and_zero_demand(self):
        net = ClosedNetwork(
            [
                Station("cpu", 0.08, servers=2),
                Station("idle", 0.0),
                Station("lag", 1.2, kind="delay"),
            ],
            think_time=0.5,
        )
        self._assert_parity(net, 60)

    def test_custom_rate_tables(self, two_station_net):
        tables = {"cpu": [20.0 + 0.5 * j for j in range(40)]}
        self._assert_parity(two_station_net, 40, rate_tables=tables)


class TestBuildRateTables:
    def test_multiserver_default_law(self, multiserver_net):
        mu = build_rate_tables(
            multiserver_net, multiserver_net.demands_at(1.0), 8
        )
        expected = np.minimum(np.arange(1, 9), 4) / 0.4
        np.testing.assert_allclose(mu[0], expected)
        np.testing.assert_allclose(mu[1], np.full(8, 1 / 0.05))

    def test_delay_and_zero_demand_rows_are_inf(self):
        net = ClosedNetwork(
            [Station("idle", 0.0), Station("lag", 2.0, kind="delay")]
        )
        mu = build_rate_tables(net, np.array([0.0, 2.0]), 5)
        assert np.all(np.isinf(mu))

    def test_rates_win_over_tables(self):
        net = ClosedNetwork([Station("disk", 0.1)], think_time=1.0)
        mu = build_rate_tables(
            net,
            np.array([0.1]),
            3,
            rates={"disk": lambda j: 7.0},
            rate_tables={"disk": [1.0, 2.0, 3.0]},
        )
        np.testing.assert_allclose(mu[0], [7.0, 7.0, 7.0])

    def test_short_table_rejected(self):
        net = ClosedNetwork([Station("disk", 0.1)], think_time=1.0)
        with pytest.raises(ValueError, match="covers 2 populations, need 3"):
            build_rate_tables(net, np.array([0.1]), 3, rate_tables={"disk": [1.0, 2.0]})

    def test_long_table_truncates(self):
        net = ClosedNetwork([Station("disk", 0.1)], think_time=1.0)
        mu = build_rate_tables(
            net, np.array([0.1]), 2, rate_tables={"disk": [5.0, 6.0, 7.0, 8.0]}
        )
        np.testing.assert_allclose(mu[0], [5.0, 6.0])

    def test_nonpositive_table_rejected(self):
        net = ClosedNetwork([Station("disk", 0.1)], think_time=1.0)
        with pytest.raises(ValueError, match="positive"):
            build_rate_tables(
                net, np.array([0.1]), 2, rate_tables={"disk": [5.0, -1.0]}
            )

    def test_rate_tables_equal_rate_callables(self, multiserver_net):
        table = [min(j, 4) / 0.4 for j in range(1, 51)]
        via_table = exact_load_dependent_mva(
            multiserver_net, 50, rate_tables={"cpu": table}
        )
        via_fn = exact_load_dependent_mva(
            multiserver_net, 50, rates={"cpu": multiserver_rates(0.4, 4)}
        )
        np.testing.assert_array_equal(via_table.throughput, via_fn.throughput)


class TestResume:
    def test_resume_is_bit_identical(self, multiserver_net):
        full = exact_load_dependent_mva(multiserver_net, 80)
        half = exact_load_dependent_mva(multiserver_net, 40)
        resumed = exact_load_dependent_mva(multiserver_net, 80, resume_from=half)
        np.testing.assert_array_equal(resumed.throughput, full.throughput)
        np.testing.assert_array_equal(resumed.queue_lengths, full.queue_lengths)
        np.testing.assert_array_equal(
            resumed.marginal_probabilities["cpu"],
            full.marginal_probabilities["cpu"],
        )

    def test_resume_with_rate_tables(self, two_station_net):
        table = [15.0 + 0.25 * j for j in range(60)]
        kwargs = {"rate_tables": {"cpu": table}}
        full = exact_load_dependent_mva(two_station_net, 60, **kwargs)
        half = exact_load_dependent_mva(two_station_net, 25, **kwargs)
        resumed = exact_load_dependent_mva(
            two_station_net, 60, resume_from=half, **kwargs
        )
        np.testing.assert_array_equal(resumed.throughput, full.throughput)

    def test_resume_rejects_changed_demands(self, multiserver_net):
        half = exact_load_dependent_mva(multiserver_net, 20)
        with pytest.raises(ValueError, match="demands differ"):
            exact_load_dependent_mva(
                multiserver_net, 40, demands=[0.39, 0.05], resume_from=half
            )

    def test_resume_rejects_changed_rates(self, multiserver_net):
        half = exact_load_dependent_mva(multiserver_net, 20)
        with pytest.raises(ValueError, match="service rates differ"):
            exact_load_dependent_mva(
                multiserver_net,
                40,
                rates={"cpu": lambda j: 30.0},
                resume_from=half,
            )

    def test_resume_rejects_foreign_solver(self, two_station_net):
        prev = exact_mva(two_station_net, 20)
        with pytest.raises(ValueError):
            exact_load_dependent_mva(two_station_net, 40, resume_from=prev)


class TestBatchedKernel:
    def _pack(self, scenario):
        return np.concatenate(
            [scenario.fixed_demands()[:, None], scenario.ld_rate_matrix()], axis=1
        )

    def test_batched_matches_scalar_bitwise(self, multiserver_net):
        from repro.engine import batched_ld_mva
        from repro.solvers import Scenario

        scenarios = [
            Scenario(multiserver_net, 60),
            Scenario(multiserver_net, 60).with_overrides(demand_scale=0.8),
            Scenario(
                multiserver_net,
                60,
                rate_tables={"cpu": [min(j, 4) / 0.38 for j in range(1, 61)]},
            ),
        ]
        stack = np.stack([self._pack(sc) for sc in scenarios])
        batch = batched_ld_mva(multiserver_net, 60, stack, think_times=[1.0, 1.0, 1.0])
        for i, sc in enumerate(scenarios):
            scalar = exact_load_dependent_mva(
                multiserver_net,
                60,
                demands=sc.fixed_demands(),
                rate_tables=sc.rate_tables,
            )
            np.testing.assert_array_equal(batch.throughput[i], scalar.throughput)
            np.testing.assert_array_equal(batch.queue_lengths[i], scalar.queue_lengths)

    def test_mask_isolates_bad_rows(self, multiserver_net):
        from repro.engine import batched_ld_mva
        from repro.solvers import Scenario

        sc = Scenario(multiserver_net, 30)
        good = self._pack(sc)
        bad = np.full_like(good, np.nan)
        batch = batched_ld_mva(
            multiserver_net,
            30,
            np.stack([good, bad]),
            think_times=[1.0, 1.0],
            mask=np.array([True, False]),
        )
        scalar = exact_load_dependent_mva(multiserver_net, 30)
        np.testing.assert_array_equal(batch.throughput[0], scalar.throughput)
        assert np.all(np.isnan(batch.throughput[1]))

    def test_nonpositive_rates_name_scenario_indices(self, multiserver_net):
        from repro.engine import batched_ld_mva
        from repro.solvers import Scenario

        good = self._pack(Scenario(multiserver_net, 10))
        bad = good.copy()
        bad[0, 3] = -1.0
        with pytest.raises(ValueError, match=r"indices \[1\]"):
            batched_ld_mva(multiserver_net, 10, np.stack([good, bad]))

    def test_solve_stack_batched_backend(self, multiserver_net):
        from repro.solvers import Scenario, solve, solve_stack

        base = Scenario(multiserver_net, 50)
        scenarios = [base.with_overrides(demand_scale=s) for s in (0.75, 1.0, 1.25)]
        batch = solve_stack(scenarios, method="ld-mva", backend="batched", cache=None)
        assert batch.backend == "batched"
        for i, sc in enumerate(scenarios):
            single = solve(sc, method="ld-mva", cache=None)
            np.testing.assert_array_equal(batch.throughput[i], single.throughput)

    def test_callable_rates_demote_auto_backend_to_serial(self, multiserver_net):
        from repro.solvers import Scenario, SolverInputError, solve_stack

        scenarios = [Scenario(multiserver_net, 20)] * 2
        rates = {"cpu": multiserver_rates(0.4, 4)}
        result = solve_stack(scenarios, method="ld-mva", cache=None, rates=rates)
        assert result.backend == "serial"
        with pytest.raises(SolverInputError, match="callable rates"):
            solve_stack(
                scenarios, method="ld-mva", backend="batched", cache=None, rates=rates
            )
