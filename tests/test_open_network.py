"""Open-network analysis (Erlang formulas, M/M/C stations)."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station
from repro.core.open_network import OpenResult, analyze_open, erlang_b, erlang_c


class TestErlangFormulas:
    def test_erlang_b_known_values(self):
        # classic telephony table: C=5, a=3 -> B ~ 0.1101
        assert erlang_b(5, 3.0) == pytest.approx(0.11005, rel=1e-3)
        # C=1: B = a / (1 + a)
        assert erlang_b(1, 2.0) == pytest.approx(2 / 3)

    def test_erlang_b_zero_load(self):
        assert erlang_b(4, 0.0) == 0.0

    def test_erlang_b_zero_servers(self):
        assert erlang_b(0, 1.5) == 1.0

    def test_erlang_c_known_values(self):
        # M/M/1: P_wait = rho
        assert erlang_c(1, 0.7) == pytest.approx(0.7)
        # M/M/2 at a=1 (rho=0.5): C(2,1) = 1/3
        assert erlang_c(2, 1.0) == pytest.approx(1 / 3)

    def test_erlang_c_saturated(self):
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0

    def test_monotone_in_load(self):
        loads = np.linspace(0.1, 3.9, 20)
        vals = [erlang_c(4, a) for a in loads]
        assert all(x < y for x, y in zip(vals, vals[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(-1, 1.0)
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(1, -0.5)


class TestAnalyzeOpen:
    @pytest.fixture
    def net(self):
        return ClosedNetwork(
            [Station("cpu", 0.02, servers=4), Station("disk", 0.05)], think_time=1.0
        )

    def test_mm1_closed_form(self):
        # Single M/M/1 station: R = D / (1 - rho).
        net = ClosedNetwork([Station("disk", 0.1)])
        res = analyze_open(net, 5.0)  # rho = 0.5
        assert res.response_time == pytest.approx(0.1 / 0.5)
        assert res.population == pytest.approx(5.0 * 0.2)

    def test_mmc_less_waiting_than_mm1(self, net):
        res = analyze_open(net, 10.0)
        # 4-server CPU at the same offered load queues less than the
        # equivalent M/M/1 of demand D: residence close to D.
        assert res.residence_of("cpu") < 0.02 / (1 - 10.0 * 0.02)
        assert res.residence_of("cpu") >= 0.02

    def test_utilizations(self, net):
        res = analyze_open(net, 10.0)
        assert res.utilizations[0] == pytest.approx(10 * 0.02 / 4)
        assert res.utilizations[1] == pytest.approx(0.5)
        assert res.bottleneck == "disk"

    def test_saturation_rejected(self, net):
        with pytest.raises(ValueError, match="saturated"):
            analyze_open(net, 21.0)  # disk: 21*0.05 = 1.05 >= 1

    def test_zero_arrivals(self, net):
        res = analyze_open(net, 0.0)
        assert res.population == 0.0
        assert res.response_time == pytest.approx(0.07)  # bare demands

    def test_throughput_axis_demand_curves(self, net):
        # Fig. 11 semantics: demand evaluated at the arrival rate.
        fns = {"disk": lambda x: 0.05 - 0.001 * x}
        low = analyze_open(net, 5.0, demand_functions=fns)
        high = analyze_open(net, 15.0, demand_functions=fns)
        assert low.demands[1] == pytest.approx(0.045)
        assert high.demands[1] == pytest.approx(0.035)

    def test_delay_station_contributes_demand_only(self):
        net = ClosedNetwork(
            [Station("cpu", 0.1), Station("lag", 0.5, kind="delay")]
        )
        res = analyze_open(net, 2.0)
        assert res.residence_of("lag") == pytest.approx(0.5)

    def test_response_grows_with_load(self, net):
        rs = [analyze_open(net, lam).response_time for lam in (1.0, 5.0, 15.0, 19.0)]
        assert all(a < b for a, b in zip(rs, rs[1:]))

    def test_validation(self, net):
        with pytest.raises(ValueError):
            analyze_open(net, -1.0)
        with pytest.raises(KeyError):
            analyze_open(net, 1.0).residence_of("gpu")
