"""Curve-fitting extrapolation baseline."""

import numpy as np
import pytest

from repro.analysis.extrapolation import ThroughputExtrapolator


def _synthetic(levels, x_max=50.0, tau=30.0):
    levels = np.asarray(levels, float)
    return x_max * (1 - np.exp(-levels / tau))


class TestFit:
    def test_recovers_generating_curve(self):
        levels = np.array([1, 10, 25, 50, 100, 200], float)
        ex = ThroughputExtrapolator(levels, _synthetic(levels), model="saturating")
        assert ex.x_max == pytest.approx(50.0, rel=0.02)
        probe = np.array([5.0, 75.0, 300.0])
        np.testing.assert_allclose(
            ex.predict_throughput(probe), _synthetic(probe), rtol=0.02
        )

    def test_logistic_model(self):
        levels = np.array([1, 20, 50, 90, 140, 200], float)
        x = 80 / (1 + np.exp(-(levels - 70) / 20))
        ex = ThroughputExtrapolator(levels, x, model="logistic")
        assert ex.x_max == pytest.approx(80.0, rel=0.05)

    def test_residuals_small_on_exact_data(self):
        levels = np.array([1, 10, 25, 50, 100], float)
        ex = ThroughputExtrapolator(levels, _synthetic(levels), model="saturating")
        assert np.abs(ex.residuals()).max() < 0.5

    def test_cycle_time_via_littles_law(self):
        levels = np.array([1, 10, 25, 50, 100], float)
        ex = ThroughputExtrapolator(levels, _synthetic(levels), model="saturating")
        ct = ex.predict_cycle_time([50.0])
        assert ct[0] == pytest.approx(50.0 / _synthetic(50.0), rel=0.02)

    def test_noisy_data_still_fits(self):
        rng = np.random.default_rng(0)
        levels = np.linspace(1, 200, 12)
        x = _synthetic(levels) * (1 + rng.normal(0, 0.03, levels.size))
        ex = ThroughputExtrapolator(levels, x, model="saturating")
        assert ex.x_max == pytest.approx(50.0, rel=0.1)


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 3"):
            ThroughputExtrapolator([1, 2], [1.0, 2.0])

    def test_unsorted(self):
        with pytest.raises(ValueError, match="increasing"):
            ThroughputExtrapolator([1, 3, 2], [1.0, 2.0, 3.0])

    def test_nonpositive_throughput(self):
        with pytest.raises(ValueError, match="positive"):
            ThroughputExtrapolator([1, 2, 3], [1.0, 0.0, 2.0])

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="model"):
            ThroughputExtrapolator([1, 2, 3], [1.0, 2.0, 3.0], model="cubic")


class TestAgainstSweep:
    def test_interpolates_measured_sweep(self, mini_sweep):
        ex = ThroughputExtrapolator(
            mini_sweep.levels.astype(float), mini_sweep.throughput
        )
        pred = ex.predict_throughput(mini_sweep.levels.astype(float))
        rel = np.abs(pred - mini_sweep.throughput) / mini_sweep.throughput
        assert rel.mean() < 0.10

    def test_extrapolation_weaker_without_saturation_samples(self, mini_sweep):
        # Fit only the rising region (first 4 levels, pre-knee) and
        # extrapolate to the saturated top level: the model-free fit
        # overshoots or undershoots X there by more than it does when the
        # saturated samples are included — the paper's argument for
        # model-based prediction.
        lv = mini_sweep.levels.astype(float)
        partial = ThroughputExtrapolator(lv[:4], mini_sweep.throughput[:4])
        full = ThroughputExtrapolator(lv, mini_sweep.throughput)
        top = lv[-1]
        err_partial = abs(
            partial.predict_throughput([top])[0] - mini_sweep.throughput[-1]
        )
        err_full = abs(full.predict_throughput([top])[0] - mini_sweep.throughput[-1])
        assert err_full <= err_partial + 1e-9
