"""Smoothing splines (eq. 12)."""

import numpy as np
import pytest

from repro.interpolate import CubicSpline, SmoothingSpline, smoothing_matrices


@pytest.fixture
def noisy_decay():
    rng = np.random.default_rng(3)
    x = np.linspace(1, 200, 15)
    truth = 0.05 + 0.1 * np.exp(-x / 80.0)
    return x, truth + rng.normal(0, 0.004, x.size), truth


class TestSmoothingMatrices:
    def test_shapes(self):
        x = np.linspace(0, 1, 6)
        q, r = smoothing_matrices(x)
        assert q.shape == (6, 4)
        assert r.shape == (4, 4)

    def test_r_symmetric_positive_definite(self):
        x = np.array([0.0, 0.5, 1.5, 2.0, 4.0])
        _, r = smoothing_matrices(x)
        np.testing.assert_allclose(r, r.T)
        assert np.all(np.linalg.eigvalsh(r) > 0)

    def test_q_annihilates_linears(self):
        # Second differences of a linear function vanish: Q^T l = 0.
        x = np.array([0.0, 1.0, 2.5, 3.0, 5.0])
        q, _ = smoothing_matrices(x)
        line = 3 * x + 2
        np.testing.assert_allclose(q.T @ line, 0, atol=1e-12)

    def test_needs_three_points(self):
        with pytest.raises(ValueError, match="at least 3"):
            smoothing_matrices(np.array([0.0, 1.0]))


class TestSmoothingSpline:
    def test_lambda_zero_interpolates(self, noisy_decay):
        x, y, _ = noisy_decay
        s = SmoothingSpline(x, y, lam=0.0)
        np.testing.assert_allclose(s(x), y, atol=1e-8)

    def test_lambda_zero_equals_natural_spline(self, noisy_decay):
        x, y, _ = noisy_decay
        s = SmoothingSpline(x, y, lam=0.0)
        ref = CubicSpline(x, y, bc="natural")
        xq = np.linspace(x[0], x[-1], 53)
        np.testing.assert_allclose(s(xq), ref(xq), atol=1e-7)

    def test_large_lambda_tends_to_line(self, noisy_decay):
        x, y, _ = noisy_decay
        s = SmoothingSpline(x, y, lam=1e9)
        # Roughness (integral of h''^2) must be ~0 -> straight line fit.
        assert s.roughness < 1e-8
        coeffs = np.polyfit(x, y, 1)
        np.testing.assert_allclose(s(x), np.polyval(coeffs, x), atol=1e-3)

    def test_roughness_decreases_with_lambda(self, noisy_decay):
        x, y, _ = noisy_decay
        lams = [0.0, 10.0, 1e3, 1e6]
        rough = [SmoothingSpline(x, y, lam=l).roughness for l in lams]
        assert all(a >= b - 1e-12 for a, b in zip(rough, rough[1:]))

    def test_rss_increases_with_lambda(self, noisy_decay):
        x, y, _ = noisy_decay
        lams = [0.0, 10.0, 1e3, 1e6]
        rss = [SmoothingSpline(x, y, lam=l).residual_sum_of_squares for l in lams]
        assert all(a <= b + 1e-12 for a, b in zip(rss, rss[1:]))

    def test_moderate_smoothing_beats_interpolation_on_noise(self, noisy_decay):
        x, y, truth = noisy_decay
        raw = SmoothingSpline(x, y, lam=0.0)
        smooth = SmoothingSpline(x, y, lam=50.0)
        xq = np.linspace(x[0], x[-1], 101)
        truth_q = 0.05 + 0.1 * np.exp(-xq / 80.0)
        err_raw = np.abs(raw(xq) - truth_q).mean()
        err_smooth = np.abs(smooth(xq) - truth_q).mean()
        assert err_smooth < err_raw

    def test_objective_value(self, noisy_decay):
        x, y, _ = noisy_decay
        s = SmoothingSpline(x, y, lam=5.0)
        assert s.objective() == pytest.approx(
            s.residual_sum_of_squares + 5.0 * s.roughness
        )

    def test_clamped_extrapolation_default(self, noisy_decay):
        x, y, _ = noisy_decay
        s = SmoothingSpline(x, y, lam=1.0)
        assert s(x[-1] + 500) == pytest.approx(s(x[-1]), rel=1e-9)

    def test_validation(self, noisy_decay):
        x, y, _ = noisy_decay
        with pytest.raises(ValueError, match="non-negative"):
            SmoothingSpline(x, y, lam=-1.0)
        with pytest.raises(ValueError, match="at least 3"):
            SmoothingSpline([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="increasing"):
            SmoothingSpline([0.0, 0.0, 1.0], [1, 2, 3])
