"""Report rendering for non-canonical tier layouts (regression coverage)."""

import pytest

from repro.apps import Application, Datapool, DemandProfile
from repro.core import ClosedNetwork, Station
from repro.loadtest import run_sweep, utilization_table_text


@pytest.fixture(scope="module")
def custom_tier_sweep():
    # Two non-standard tiers: "api" and "db" (no load/app pair).
    stations = []
    for tier, cpu_d, disk_d in (("api", 0.06, 0.004), ("db", 0.04, 0.03)):
        stations += [
            Station(f"{tier}.cpu", DemandProfile.constant(cpu_d), servers=2),
            Station(f"{tier}.disk", DemandProfile.constant(disk_d)),
            Station(f"{tier}.net_tx", DemandProfile.constant(0.002)),
            Station(f"{tier}.net_rx", DemandProfile.constant(0.002)),
        ]
    net = ClosedNetwork(stations, think_time=1.0, name="custom")
    app = Application(
        name="CustomTiers",
        network=net,
        workflow="api",
        pages=2,
        datapool=Datapool(records=10),
        max_tested_concurrency=30,
        default_sample_levels=(1, 10, 25),
    )
    return run_sweep(app, duration=40.0, seed=2)


class TestCustomTierReport:
    def test_renders_without_keyerror(self, custom_tier_sweep):
        text = utilization_table_text(custom_tier_sweep)
        assert "Api Server" in text  # custom tier gets a title-cased label
        assert "Database Server" in text  # "db" keeps its canonical label

    def test_canonical_tiers_absent(self, custom_tier_sweep):
        text = utilization_table_text(custom_tier_sweep)
        assert "Load Server" not in text

    def test_row_per_level(self, custom_tier_sweep):
        text = utilization_table_text(custom_tier_sweep)
        data_lines = [l for l in text.splitlines() if l and l.lstrip()[0].isdigit()]
        assert len(data_lines) == 3

    def test_mixed_with_canonical_orders_canonical_first(self):
        # a sweep with "db" (canonical) and "cache" (custom): db first
        stations = [
            Station("db.cpu", 0.02),
            Station("cache.cpu", 0.01),
        ]
        net = ClosedNetwork(stations, think_time=0.5, name="mix")
        app = Application(
            name="Mix",
            network=net,
            workflow="w",
            pages=1,
            datapool=Datapool(records=1),
            max_tested_concurrency=10,
            default_sample_levels=(1, 5),
        )
        sweep = run_sweep(app, duration=30.0, seed=0)
        text = utilization_table_text(sweep)
        header = text.splitlines()[2]
        assert header.index("Database Server") < header.index("Cache Server")
