"""Chebyshev nodes and error bounds (Section 8)."""

import math

import numpy as np
import pytest

from repro.interpolate import (
    chebyshev_error_bound,
    chebyshev_nodes,
    chebyshev_nodes_unit,
    concurrency_test_points,
    exponential_error_bound,
)


class TestUnitNodes:
    def test_are_chebyshev_roots(self):
        # T_n vanishes at the nodes: cos(n * arccos(x)) == 0.
        for n in (1, 3, 5, 8):
            nodes = chebyshev_nodes_unit(n)
            tn = np.cos(n * np.arccos(nodes))
            np.testing.assert_allclose(tn, 0.0, atol=1e-12)

    def test_sorted_and_in_range(self):
        nodes = chebyshev_nodes_unit(7)
        assert np.all(np.diff(nodes) > 0)
        assert nodes[0] > -1 and nodes[-1] < 1

    def test_symmetric(self):
        nodes = chebyshev_nodes_unit(6)
        np.testing.assert_allclose(nodes, -nodes[::-1], atol=1e-12)

    def test_single_node_at_zero(self):
        np.testing.assert_allclose(chebyshev_nodes_unit(1), [0.0], atol=1e-15)

    def test_needs_positive_count(self):
        with pytest.raises(ValueError):
            chebyshev_nodes_unit(0)


class TestMappedNodes:
    def test_affine_map(self):
        unit = chebyshev_nodes_unit(5)
        mapped = chebyshev_nodes(5, 1.0, 300.0)
        np.testing.assert_allclose(mapped, 150.5 + 149.5 * unit, rtol=1e-12)

    def test_inside_interval(self):
        mapped = chebyshev_nodes(9, -3.0, 7.0)
        assert np.all(mapped > -3) and np.all(mapped < 7)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            chebyshev_nodes(3, 5.0, 5.0)


class TestErrorBound:
    def test_formula(self):
        # eq. 19: deriv_max / (2^(n-1) n!)
        assert chebyshev_error_bound(4, 48.0) == pytest.approx(48 / (8 * 24))

    def test_decreases_with_nodes_for_exponential(self):
        bounds = [exponential_error_bound(n, 1.0) for n in range(1, 10)]
        assert all(a > b for a, b in zip(bounds, bounds[1:]))

    def test_paper_claim_under_0p2_percent_past_5_nodes(self):
        # Fig. 13: "for greater than 5 nodes, the error rate drops to
        # less than 0.2% for all cases" (mu up to ~1).
        for mu in (0.25, 0.5, 1.0):
            assert exponential_error_bound(6, mu) < 0.002

    def test_bound_actually_bounds_interpolation_error(self):
        # Empirical check: Chebyshev polynomial interpolation of exp(x)
        # stays below the eq. 19 bound.
        mu = 1.0
        for n in (3, 5, 7):
            nodes = chebyshev_nodes_unit(n)
            vals = np.exp(mu * nodes)
            coeffs = np.polyfit(nodes, vals, n - 1)
            xq = np.linspace(-1, 1, 501)
            err = np.abs(np.polyval(coeffs, xq) - np.exp(mu * xq)).max()
            assert err <= exponential_error_bound(n, mu) * (1 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            chebyshev_error_bound(0, 1.0)
        with pytest.raises(ValueError):
            chebyshev_error_bound(3, -1.0)


class TestConcurrencyTestPoints:
    def test_paper_jpetstore_design(self):
        # Paper: Chebyshev-5 on [1, 300] ~ {9, 63, 151, 239, 293}
        # (+/- 1 from rounding conventions).
        pts = concurrency_test_points(5, 1, 300)
        expected = np.array([9, 63, 151, 239, 293])
        assert np.all(np.abs(pts - expected) <= 1)

    def test_paper_chebyshev_3_and_7(self):
        pts3 = concurrency_test_points(3, 1, 300)
        assert np.all(np.abs(pts3 - np.array([22, 151, 280])) <= 2)
        pts7 = concurrency_test_points(7, 1, 300)
        assert np.all(np.abs(pts7 - np.array([5, 34, 86, 151, 216, 268, 297])) <= 2)

    def test_integer_unique_increasing(self):
        pts = concurrency_test_points(9, 1, 50)
        assert pts.dtype.kind == "i"
        assert np.all(np.diff(pts) >= 1)

    def test_minimum_gap_enforced(self):
        pts = concurrency_test_points(10, 1, 12, minimum_gap=2)
        assert np.all(np.diff(pts) >= 2)
        assert pts[-1] <= 12

    def test_validation(self):
        with pytest.raises(ValueError):
            concurrency_test_points(3, 10, 10)
        with pytest.raises(ValueError):
            concurrency_test_points(3, 1, 10, minimum_gap=0)
