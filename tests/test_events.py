"""Future-event list."""

import pytest

from repro.simulation import EventList


class TestEventList:
    def test_orders_by_time(self):
        ev = EventList()
        ev.schedule(3.0, 1, "c")
        ev.schedule(1.0, 1, "a")
        ev.schedule(2.0, 1, "b")
        assert [ev.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_on_ties(self):
        ev = EventList()
        for tag in ("first", "second", "third"):
            ev.schedule(1.0, 0, tag)
        assert [ev.pop()[2] for _ in range(3)] == ["first", "second", "third"]

    def test_peek_does_not_remove(self):
        ev = EventList()
        ev.schedule(5.0, 0)
        assert ev.peek_time() == 5.0
        assert len(ev) == 1

    def test_len_and_bool(self):
        ev = EventList()
        assert not ev
        ev.schedule(1.0, 0)
        assert ev and len(ev) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventList().schedule(-0.1, 0)

    def test_drain_until_horizon(self):
        ev = EventList()
        for t in (1.0, 2.0, 3.0, 4.0):
            ev.schedule(t, 0, t)
        drained = [p for _, _, p in ev.drain_until(2.5)]
        assert drained == [1.0, 2.0]
        assert len(ev) == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventList().pop()

    def test_kind_and_payload_roundtrip(self):
        ev = EventList()
        ev.schedule(1.5, 7, {"x": 1})
        t, kind, payload = ev.pop()
        assert (t, kind, payload) == (1.5, 7, {"x": 1})
