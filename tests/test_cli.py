"""Command-line interface."""

import pytest

from repro.cli import main


class TestListApps:
    def test_lists_both_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "vins" in out and "jpetstore" in out


class TestSolve:
    def test_single_server(self, capsys):
        code = main(
            ["solve", "--demands", "0.05,0.08", "--think", "1", "--population", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exact-mva" in out
        assert "12.5" in out  # saturation at 1/0.08

    def test_multiserver(self, capsys):
        code = main(
            [
                "solve",
                "--demands", "0.4,0.05",
                "--servers", "4,1",
                "--think", "1",
                "--population", "60",
            ]
        )
        assert code == 0
        assert "exact-multiserver-mva" in capsys.readouterr().out

    def test_mismatched_servers(self):
        with pytest.raises(SystemExit):
            main(["solve", "--demands", "0.1,0.2", "--servers", "1", "--population", "5"])

    def test_bad_number_list(self):
        with pytest.raises(SystemExit):
            main(["solve", "--demands", "a,b", "--population", "5"])

    def test_explicit_method(self, capsys):
        code = main(
            [
                "solve",
                "--demands", "0.05,0.08",
                "--think", "1",
                "--population", "30",
                "--method", "linearizer",
            ]
        )
        assert code == 0
        assert "linearizer" in capsys.readouterr().out

    def test_bounds_method_prints_envelope(self, capsys):
        code = main(
            [
                "solve",
                "--demands", "0.05,0.08",
                "--think", "1",
                "--population", "30",
                "--method", "bounds",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "knee" in out
        assert "X upper" in out

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve",
                    "--demands", "0.05",
                    "--population", "5",
                    "--method", "nope",
                ]
            )


class TestCompose:
    ARGS = [
        "compose",
        "--demands", "0.012,0.02,0.03,0.025",
        "--servers", "2,4,1,1",
        "--think", "1",
        "--population", "40",
        "--aggregate", "2,3:disks",
        "--aggregate", "1,disks:server",
    ]

    def test_chained_aggregation_passes_flat_check(self, capsys):
        assert main(self.ARGS + ["--flat-check"]) == 0
        out = capsys.readouterr().out
        assert "aggregated station-2+station-3 -> disks" in out
        assert "aggregated station-1+disks -> server" in out
        assert "composed stations: station-0, server" in out
        assert "flat-check: max |X_composed - X_flat|" in out

    def test_flat_check_gate_enforces_tolerance(self, capsys):
        with pytest.raises(SystemExit, match="diverged from the flat solve"):
            main(self.ARGS + ["--flat-check", "--flat-tolerance", "0"])

    def test_unknown_station_in_aggregate_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "compose",
                    "--demands", "0.05,0.08",
                    "--population", "10",
                    "--aggregate", "station-0,ghost",
                ]
            )


class TestSolversListing:
    def test_lists_capability_matrix(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "exact-mva" in out
        assert "mvasd" in out
        assert "varying demands" in out
        assert "wraps repro.core.mvasd.mvasd" in out


class TestSweep:
    def test_runs_small_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--app", "jpetstore",
                "--levels", "1,10",
                "--duration", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "JPetStore" in out
        assert "Database Server CPU" in out

    def test_replicated_sweep_with_workers(self, capsys):
        code = main(
            [
                "sweep",
                "--app", "jpetstore",
                "--levels", "1,10",
                "--duration", "20",
                "--replications", "2",
                "--workers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 replications" in out
        assert "95% CI" in out
        assert "±" in out


class TestSweepGrid:
    def test_batched_grid_single_server(self, capsys):
        code = main(
            [
                "sweep-grid",
                "--demands", "0.05,0.08",
                "--think", "1",
                "--population", "40",
                "--scales", "0.5,1.0,1.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 scenarios solved in one batch" in out
        assert "demand_scale=0.5" in out
        assert "exact-mva" in out

    def test_grid_with_think_axis_and_multiserver(self, capsys):
        code = main(
            [
                "sweep-grid",
                "--demands", "0.05,0.08",
                "--servers", "4,1",
                "--think", "1",
                "--population", "40",
                "--scales", "0.8,1.2",
                "--think-times", "0.5,2.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 scenarios solved in one batch" in out
        assert "think_time=0.5" in out and "think_time=2.0" in out
        assert "mvasd" in out

    def test_explicit_amva_solver(self, capsys):
        code = main(
            [
                "sweep-grid",
                "--demands", "0.05,0.08",
                "--think", "1",
                "--population", "30",
                "--scales", "1.0",
                "--solver", "amva",
            ]
        )
        assert code == 0
        assert "schweitzer" in capsys.readouterr().out

    def test_mismatched_servers_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep-grid",
                    "--demands", "0.1,0.2",
                    "--servers", "1",
                    "--population", "5",
                ]
            )

    def test_registry_solver_name_accepted(self, capsys):
        code = main(
            [
                "sweep-grid",
                "--demands", "0.05,0.08",
                "--think", "1",
                "--population", "20",
                "--scales", "0.9,1.1",
                "--solver", "linearizer",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stacked-linearizer" in out
        assert "2 scenarios solved in one batch" in out


class TestPredict:
    def test_runs_workflow(self, capsys):
        code = main(
            [
                "predict",
                "--app", "jpetstore",
                "--nodes", "3",
                "--max-population", "60",
                "--duration", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Design points" in out
        assert "MVASD prediction" in out


class TestParser:
    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--app", "nope", "--duration", "10"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCompare:
    def test_runs_comparison(self, capsys):
        code = main(
            [
                "compare",
                "--app", "jpetstore",
                "--mva-levels", "14,70",
                "--max-population", "80",
                "--duration", "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MVASD" in out and "Best model" in out
