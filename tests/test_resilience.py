"""Resilient execution: retries, degradation, isolation, checkpoint/resume.

Complements ``tests/test_faults.py`` (fault-kind recovery parity) with
the machinery-level contracts: :func:`parallel_map`'s infrastructure
vs task failure split, :class:`RetryPolicy` arithmetic, per-scenario
``errors="isolate"`` semantics (including the property-based good/bad
mixed-stack test), :class:`SweepCheckpoint` crash-and-resume
bit-identity, non-fatal cache behavior, and the non-finite demand
validation the isolation path depends on to fail loudly.
"""

import json
import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mvasd import mvasd
from repro.core.network import ClosedNetwork, Station
from repro.engine import (
    FaultPlan,
    ResilientBackend,
    RetryPolicy,
    SweepCheckpoint,
    batched_exact_mva,
    parallel_map,
)
from repro.engine import faults, sweep
from repro.solvers import (
    Scenario,
    SolverCache,
    SolverInputError,
    cache_stats,
    solve,
    solve_stack,
)
from repro.solvers.validation import check_finite_demands

ATOL = 1e-10


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.deactivate()


@pytest.fixture
def net():
    return ClosedNetwork(
        [Station("web", demand=0.02), Station("db", demand=0.05)], think_time=1.0
    )


@pytest.fixture
def stack(net):
    return [Scenario(net, 12, think_time=0.5 + 0.1 * i) for i in range(6)]


@pytest.fixture
def baseline(stack):
    return solve_stack(stack, method="exact-mva", backend="serial", cache=None)


# -- parallel_map robustness ---------------------------------------------------
# Module-level worker functions: the parallel path pickles them by
# reference.  Each takes the parent PID as the payload so it can behave
# differently in a forked child vs the in-parent serial retry.


def _crash_in_child(item, parent_pid):
    if item == "boom" and os.getpid() != parent_pid:
        os._exit(1)
    return item * 2


def _hang_in_child(item, parent_pid):
    if item == "slow" and os.getpid() != parent_pid:
        time.sleep(30)
    return item.upper()


def _raise_on_bad(item, payload):
    if item < 0:
        raise ValueError(f"bad item {item}")
    return item + 1


class TestParallelMapRobustness:
    def test_crashed_worker_item_recomputed_serially(self):
        items = ["a", "boom", "c", "d"]
        out = parallel_map(_crash_in_child, items, workers=2, payload=os.getpid())
        assert out == ["aa", "boomboom", "cc", "dd"]

    def test_wedged_worker_abandoned_and_recomputed(self):
        items = ["slow", "ok"]
        start = time.time()
        out = parallel_map(
            _hang_in_child, items, workers=2, payload=os.getpid(), timeout=0.4
        )
        assert out == ["SLOW", "OK"]
        assert time.time() - start < 10  # never waited on the wedged pool

    def test_task_exception_propagates_unchanged(self):
        with pytest.raises(ValueError, match="bad item -3"):
            parallel_map(_raise_on_bad, [1, -3, 2], workers=2)

    def test_return_exceptions_collects_task_errors(self):
        out = parallel_map(
            _raise_on_bad, [1, -3, 2], workers=2, return_exceptions=True
        )
        assert out[0] == 2 and out[2] == 3
        assert isinstance(out[1], ValueError)

    def test_return_exceptions_serial_path(self):
        out = parallel_map(
            _raise_on_bad, [1, -3], workers=1, return_exceptions=True
        )
        assert out[0] == 2 and isinstance(out[1], ValueError)

    def test_payload_global_restored(self):
        sentinel = object()
        sweep._PAYLOAD = sentinel
        try:
            parallel_map(_raise_on_bad, [1, 2, 3], workers=2)
            assert sweep._PAYLOAD is sentinel
        finally:
            sweep._PAYLOAD = None


class TestRetryPolicy:
    def test_backoff_progression_and_cap(self):
        p = RetryPolicy(backoff_base=0.1, backoff_multiplier=2.0, backoff_max=0.3)
        assert p.backoff(1) == pytest.approx(0.1)
        assert p.backoff(2) == pytest.approx(0.2)
        assert p.backoff(3) == pytest.approx(0.3)  # capped, not 0.4
        assert p.backoff(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(shard_timeout=0)

    def test_bad_errors_mode_rejected(self):
        with pytest.raises(ValueError, match="errors"):
            ResilientBackend(errors="ignore")


class TestErrorIsolation:
    def test_isolate_returns_failure_records(self, stack, baseline):
        with faults.injected(FaultPlan.parse("raise-in-kernel@scenario=2")):
            result = solve_stack(
                stack, method="exact-mva", backend="serial",
                cache=None, errors="isolate",
            )
        assert result.failed_indices == (2,)
        (failure,) = result.failures
        assert failure.solver == "exact-mva"
        assert "InjectedFault" in failure.error
        assert failure.fingerprint == stack[2].fingerprint()
        assert np.isnan(result.throughput[2]).all()
        good = [i for i in range(len(stack)) if i != 2]
        np.testing.assert_array_equal(
            result.throughput[good], baseline.throughput[good]
        )

    def test_raise_mode_propagates(self, stack):
        with faults.injected(FaultPlan.parse("raise-in-kernel@scenario=2")):
            with pytest.raises(Exception, match="injected raise-in-kernel"):
                solve_stack(
                    stack, method="exact-mva", backend="serial", cache=None
                )

    def test_invalid_errors_value(self, stack):
        with pytest.raises(SolverInputError, match="errors must be"):
            solve_stack(stack, cache=None, errors="retry")

    def test_single_scenario_solve_rejects_stack_knobs(self, net):
        with pytest.raises(SolverInputError, match="scenario stacks"):
            solve(Scenario(net, 10), errors="isolate")

    def test_failed_results_never_cached(self, stack):
        store = SolverCache()
        with faults.injected(FaultPlan.parse("raise-in-kernel@scenario=0")):
            bad = solve_stack(
                stack, method="exact-mva", backend="serial",
                cache=store, errors="isolate",
            )
        assert bad.failures and len(store) == 0
        clean = solve_stack(
            stack, method="exact-mva", backend="serial",
            cache=store, errors="isolate",
        )
        assert not clean.failures and len(store) == 1

    def test_resilient_isolates_persistent_failure(self, stack, baseline):
        # Armed for every attempt the degradation chain can make, the
        # poisoned scenario must end as a failure record, not an abort.
        spec = ";".join(
            f"raise-in-kernel@scenario=4,attempt={a}" for a in range(8)
        )
        with faults.injected(FaultPlan.parse(spec)):
            result = solve_stack(
                stack, method="exact-mva", backend="resilient",
                workers=1, cache=None, errors="isolate",
            )
        assert result.failed_indices == (4,)
        assert result.failures[0].retries > 0
        good = [i for i in range(len(stack)) if i != 4]
        np.testing.assert_allclose(
            result.throughput[good], baseline.throughput[good], atol=ATOL
        )

    @settings(max_examples=12, deadline=None)
    @given(bad=st.sets(st.integers(min_value=0, max_value=5), min_size=1, max_size=4))
    def test_isolate_preserves_good_scenarios_exactly(self, bad):
        net = ClosedNetwork(
            [Station("web", demand=0.02), Station("db", demand=0.05)],
            think_time=1.0,
        )
        stack = [Scenario(net, 10, think_time=0.5 + 0.1 * i) for i in range(6)]
        spec = ";".join(f"raise-in-kernel@scenario={i}" for i in sorted(bad))
        with faults.injected(FaultPlan.parse(spec)):
            mixed = solve_stack(
                stack, method="exact-mva", backend="serial",
                cache=None, errors="isolate",
            )
        faults.deactivate()
        good = [i for i in range(6) if i not in bad]
        assert mixed.failed_indices == tuple(sorted(bad))
        assert np.isnan(mixed.throughput[sorted(bad)]).all()
        if good:
            clean = solve_stack(
                [stack[i] for i in good], method="exact-mva",
                backend="serial", cache=None,
            )
            np.testing.assert_array_equal(mixed.throughput[good], clean.throughput)
            np.testing.assert_array_equal(
                mixed.queue_lengths[good], clean.queue_lengths
            )


class TestSweepCheckpoint:
    def test_kill_and_resume_bit_identical(self, tmp_path, stack, baseline):
        path = tmp_path / "sweep.ckpt"
        full = solve_stack(
            stack, method="exact-mva", workers=2, cache=None, checkpoint=path
        )
        # Simulate a crash that lost the tail: keep only the first
        # journaled shard plus a torn half-written record.
        lines = path.read_text().splitlines()
        assert len(lines) >= 2
        path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        resumed = solve_stack(
            stack, method="exact-mva", workers=2, cache=None, checkpoint=path
        )
        assert np.array_equal(resumed.throughput, full.throughput)
        assert np.array_equal(resumed.queue_lengths, full.queue_lengths)
        assert np.array_equal(resumed.utilizations, full.utilizations)
        np.testing.assert_allclose(full.throughput, baseline.throughput, atol=ATOL)

    def test_completed_checkpoint_skips_recomputation(self, tmp_path, stack):
        path = tmp_path / "sweep.ckpt"
        solve_stack(stack, method="exact-mva", workers=2, cache=None, checkpoint=path)
        size = path.stat().st_size
        solve_stack(stack, method="exact-mva", workers=2, cache=None, checkpoint=path)
        assert path.stat().st_size == size  # nothing re-journaled

    def test_corrupted_payload_is_resolved_fresh(self, tmp_path, stack):
        path = tmp_path / "sweep.ckpt"
        solve_stack(stack, method="exact-mva", workers=2, cache=None, checkpoint=path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        records[0]["payload"] = records[0]["payload"][:-8] + "AAAAAAAA"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        ck = SweepCheckpoint(path)
        loaded = ck.load()
        assert records[0]["key"] not in loaded  # checksum mismatch dropped
        assert len(loaded) == len(records) - 1

    def test_garbage_journal_ignored(self, tmp_path, stack, baseline):
        path = tmp_path / "sweep.ckpt"
        path.write_text("this is not json\n{\"half\": true\n")
        result = solve_stack(
            stack, method="exact-mva", workers=2, cache=None, checkpoint=path
        )
        np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)

    def test_shard_key_refuses_uncacheable_options(self):
        assert SweepCheckpoint.shard_key("mvasd", {"hook": lambda: 0}, ("fp",)) is None
        assert (
            SweepCheckpoint.shard_key("mvasd", {"demand_axis": "throughput"}, ("fp",))
            is None
        )
        key = SweepCheckpoint.shard_key("mvasd", {"single_server": True}, ("fp",))
        assert isinstance(key, str) and len(key) == 64

    def test_failed_parts_never_journaled(self, tmp_path, stack):
        path = tmp_path / "sweep.ckpt"
        spec = ";".join(f"raise-in-kernel@scenario=1,attempt={a}" for a in range(8))
        with faults.injected(FaultPlan.parse(spec)):
            result = solve_stack(
                stack, method="exact-mva", backend="resilient", workers=1,
                cache=None, errors="isolate", checkpoint=path,
            )
        assert result.failures
        ck = SweepCheckpoint(path)
        assert ck.load() == {}  # the failed shard must be recomputed next run


class TestMulticlassCheckpoint:
    """Satellite: all three stack containers ride the shard journal.

    Multi-class sweeps used to skip journaling (the npz layout only knew
    the single-class trajectory container); these pin the extended
    ``container``-tagged layout and the resume bit-identity it buys.
    """

    def _mc_stack(self, net, s=6):
        from repro.solvers import WorkloadClass

        scales = np.linspace(0.8, 1.2, s)
        return [
            Scenario(
                net,
                5,
                classes=(
                    WorkloadClass(
                        "a", 3, {"web": 0.02 * sc, "db": 0.05 * sc}, think_time=1.0
                    ),
                    WorkloadClass(
                        "b", 2, {"web": 0.01 * sc, "db": 0.04 * sc}, think_time=0.5
                    ),
                ),
            )
            for sc in scales
        ]

    def test_multiclass_kill_and_resume_bit_identical(self, tmp_path, net):
        stack = self._mc_stack(net)
        path = tmp_path / "mc.ckpt"
        full = solve_stack(
            stack, method="exact-multiclass", workers=2, cache=None, checkpoint=path
        )
        lines = path.read_text().splitlines()
        assert len(lines) >= 2
        assert all(
            json.loads(line)["meta"]["container"] == "multiclass" for line in lines
        )
        # crash that lost the tail: first shard survives, half a torn record
        path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        resumed = solve_stack(
            stack, method="exact-multiclass", workers=2, cache=None, checkpoint=path
        )
        assert np.array_equal(resumed.throughput, full.throughput)
        assert np.array_equal(resumed.queue_lengths_by_class, full.queue_lengths_by_class)
        assert np.array_equal(resumed.utilizations, full.utilizations)
        assert resumed.populations == full.populations
        assert resumed.class_names == full.class_names
        serial = solve_stack(
            stack, method="exact-multiclass", backend="serial", cache=None
        )
        np.testing.assert_allclose(full.throughput, serial.throughput, atol=ATOL)

    def test_multiclass_trajectory_container_round_trips(self, tmp_path, net):
        stack = self._mc_stack(net)
        part = solve_stack(stack, method="multiclass-mvasd", backend="batched", cache=None)
        ck = SweepCheckpoint(tmp_path / "traj.ckpt")
        key = "c" * 64
        ck.record(key, part)
        loaded = ck.load()[key]
        assert type(loaded) is type(part)
        assert loaded.class_names == part.class_names
        assert np.array_equal(loaded.totals, part.totals)
        assert np.array_equal(np.asarray(loaded.populations), np.asarray(part.populations))
        assert np.array_equal(loaded.throughput, part.throughput)
        assert np.array_equal(loaded.response_time, part.response_time)
        assert np.array_equal(loaded.utilizations, part.utilizations)

    def test_v1_untagged_record_still_decodes(self, tmp_path, stack):
        """Journals written before the container tag keep loading as mva."""
        path = tmp_path / "v1.ckpt"
        solve_stack(stack, method="exact-mva", workers=2, cache=None, checkpoint=path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        for record in records:
            record["meta"].pop("container")
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        loaded = SweepCheckpoint(path).load()
        assert len(loaded) == len(records)
        for part in loaded.values():
            assert part.throughput.ndim == 2  # BatchedMVAResult shape

    def test_unknown_container_skipped_not_fatal(self, tmp_path, stack, baseline):
        path = tmp_path / "future.ckpt"
        solve_stack(stack, method="exact-mva", workers=2, cache=None, checkpoint=path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        records[0]["meta"]["container"] = "from-the-future"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        loaded = SweepCheckpoint(path).load()
        assert len(loaded) == len(records) - 1  # unknown shard re-solves
        result = solve_stack(
            stack, method="exact-mva", workers=2, cache=None, checkpoint=path
        )
        np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)


class TestNonFiniteDemands:
    def test_check_finite_names_the_solver(self):
        with pytest.raises(SolverInputError, match="exact-mva: demands must be finite"):
            check_finite_demands(np.array([0.1, np.nan]), solver="exact-mva")
        with pytest.raises(SolverInputError, match="finite"):
            check_finite_demands(np.array([np.inf, 0.1]), solver="amva")

    def test_nan_does_not_slip_past_sign_check(self):
        # NaN < 0 is False — a bare `demands < 0` guard admits NaN.
        arr = np.array([np.nan, 0.05])
        with pytest.raises(SolverInputError):
            check_finite_demands(arr)

    def test_batched_kernel_rejects_nan_stack(self, net):
        stack = np.array([[0.02, 0.05], [np.nan, 0.05]])
        with pytest.raises(ValueError, match="batched-exact-mva.*finite"):
            batched_exact_mva(net, 10, stack)

    def test_mvasd_rejects_nan_demand_function(self):
        netv = ClosedNetwork(
            [Station("cpu", demand=0.02), Station("db", demand=0.05)], think_time=1.0
        )
        with pytest.raises(ValueError, match="non-finite"):
            mvasd(
                netv, 10,
                demand_functions=[lambda n: np.nan, lambda n: 0.05],
            )


class TestNonFatalCache:
    def test_unhashable_key_degrades_to_miss(self):
        store = SolverCache()
        assert store.get(["not", "hashable"]) is None
        store.put(["not", "hashable"], object())  # must not raise
        s = store.stats()
        assert s.errors == 2 and s.size == 0

    def test_cache_stats_indexable(self):
        store = SolverCache()
        store.get("missing")
        assert cache_stats(store)["misses"] == 1
        assert cache_stats(store)["errors"] == 0
        with pytest.raises(KeyError):
            cache_stats(store)["not-a-counter"]

    def test_injected_cache_fault_never_reaches_solve(self, net):
        store = SolverCache()
        scenario = Scenario(net, 10)
        clean = solve(scenario, method="exact-mva", cache=None)
        with faults.injected(FaultPlan.parse("corrupt-cache-entry")):
            result = solve(scenario, method="exact-mva", cache=store)
        np.testing.assert_allclose(result.throughput, clean.throughput, atol=ATOL)
        assert store.stats().errors > 0 and len(store) == 0

    def test_clear_resets_error_counter(self):
        store = SolverCache()
        store.get(["unhashable"])
        store.clear()
        assert store.stats().errors == 0


class TestSweepGridCLI:
    def test_inject_faults_flag(self, capsys):
        from repro.cli import main

        code = main([
            "sweep-grid", "--demands", "0.02,0.05", "--think", "1",
            "--population", "15", "--scales", "0.75,1.0,1.25",
            "--solver", "mva", "--errors", "isolate",
            "--inject-faults", "raise-in-kernel@scenario=1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "FAILED" in out and "failed scenario 1" in out

    def test_bad_fault_spec_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="inject-faults"):
            main([
                "sweep-grid", "--demands", "0.02,0.05", "--population", "10",
                "--inject-faults", "meteor-strike",
            ])

    def test_checkpoint_flag_resumes_identically(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "sweep-grid", "--demands", "0.02,0.05", "--think", "1",
            "--population", "15", "--scales", "0.75,1.0",
            "--backend", "resilient", "--workers", "2",
            "--checkpoint", str(tmp_path / "grid.ckpt"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
