"""Regression-based demand inference."""

import numpy as np
import pytest

from repro.loadtest import run_sweep
from repro.loadtest.inference import (
    DemandEstimate,
    regress_demands,
    windowed_observations,
)


class TestRegressDemands:
    def _observations(self, demand=0.02, idle=0.05, noise=0.0, n=30, seed=0):
        rng = np.random.default_rng(seed)
        x = np.linspace(5, 40, n)
        u = idle + demand * x + rng.normal(0, noise, n)
        return x, u

    def test_recovers_slope_and_intercept(self):
        x, u = self._observations()
        est = regress_demands(x, {"disk": u})["disk"]
        assert est.demand == pytest.approx(0.02, rel=1e-6)
        assert est.idle_util == pytest.approx(0.05, rel=1e-6)
        assert est.r_squared == pytest.approx(1.0)

    def test_noisy_data_wider_confidence(self):
        x, u_clean = self._observations(noise=1e-4)
        _, u_noisy = self._observations(noise=5e-3)
        clean = regress_demands(x, {"disk": u_clean})["disk"]
        noisy = regress_demands(x, {"disk": u_noisy})["disk"]
        assert noisy.stderr > clean.stderr
        lo, hi = noisy.confidence_95
        assert lo < 0.02 < hi

    def test_idle_utilization_separated_from_demand(self):
        # The raw service-demand law D = U/X is biased upward by the idle
        # component; regression removes it.
        x, u = self._observations(demand=0.02, idle=0.10)
        raw = (u / x).mean()
        est = regress_demands(x, {"disk": u})["disk"]
        assert raw > 0.022  # biased
        assert est.demand == pytest.approx(0.02, rel=1e-6)

    def test_server_scaling(self):
        x, u = self._observations(demand=0.004)  # per-server slope
        est = regress_demands(x, {"cpu": u}, servers={"cpu": 16})["cpu"]
        assert est.demand == pytest.approx(0.064, rel=1e-6)

    def test_negative_slope_clipped(self):
        x = np.linspace(5, 40, 20)
        u = 0.5 - 0.001 * x
        est = regress_demands(x, {"odd": u})["odd"]
        assert est.demand == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 3"):
            regress_demands([1.0, 2.0], {"a": [0.1, 0.2]})
        with pytest.raises(ValueError, match="vary"):
            regress_demands([1.0, 1.0, 1.0], {"a": [0.1, 0.2, 0.3]})
        with pytest.raises(ValueError, match="observations"):
            regress_demands([1.0, 2.0, 3.0], {"a": [0.1, 0.2]})

    def test_summary_text(self):
        x, u = self._observations()
        text = regress_demands(x, {"disk": u})["disk"].summary()
        assert "disk" in text and "R^2" in text


class TestWindowedObservations:
    def test_single_run_inference(self, mini_app):
        # Demand estimation from ONE load test: window it, regress.
        from repro.loadtest import LoadTest

        run = LoadTest(mini_app).fire(virtual_users=20, seed=3, duration=120.0)
        x, utils = windowed_observations(run.simulation, window=5.0)
        assert x.size >= 10
        servers = {st.name: st.servers for st in mini_app.network.stations}
        est = regress_demands(x, utils, servers=servers)
        truth = mini_app.true_demands_at(20)
        assert est["db.disk"].demand == pytest.approx(truth["db.disk"], rel=0.2)

    def test_validation(self, mini_app):
        from repro.loadtest import LoadTest

        run = LoadTest(mini_app).fire(virtual_users=5, seed=0, duration=40.0)
        with pytest.raises(ValueError, match="window"):
            windowed_observations(run.simulation, window=0.0)
