"""Application models (VINS / JPetStore / three-tier builder)."""

import numpy as np
import pytest

from repro.apps import (
    Application,
    Datapool,
    DemandProfile,
    jpetstore_application,
    three_tier_network,
    vins_application,
)


class TestThreeTierNetwork:
    def test_builds_twelve_stations(self):
        profiles = {
            f"{tier}.{res}": DemandProfile.constant(0.01)
            for tier in ("load", "app", "db")
            for res in ("cpu", "disk", "net_tx", "net_rx")
        }
        net = three_tier_network(profiles, cpu_cores=8)
        assert len(net) == 12
        assert net["load.cpu"].servers == 8
        assert net["db.disk"].servers == 1

    def test_missing_profile_rejected(self):
        with pytest.raises(ValueError, match="net_rx"):
            three_tier_network(
                {
                    f"{tier}.{res}": DemandProfile.constant(0.01)
                    for tier in ("load", "app", "db")
                    for res in ("cpu", "disk", "net_tx")
                }
            )


class TestVINS:
    def test_paper_configuration(self):
        app = vins_application()
        assert app.pages == 7
        assert app.workflow == "Renew Policy"
        assert app.network["db.cpu"].servers == 16
        assert app.max_tested_concurrency == 1500
        assert app.datapool.size_gb == pytest.approx(10.0, rel=0.01)

    def test_db_disk_is_bottleneck(self):
        app = vins_application()
        assert app.bottleneck(1) == "db.disk"
        assert app.bottleneck(1000) == "db.disk"

    def test_demands_decrease_with_concurrency(self):
        app = vins_application()
        d1 = app.true_demands_at(1)
        d1000 = app.true_demands_at(1000)
        for name in app.station_names:
            assert d1000[name] < d1[name]

    def test_db_cpu_utilization_anchor(self):
        # At saturation (X ~ 1/D_disk), DB CPU must sit near the paper's
        # ~35-40% while the disk saturates.
        app = vins_application()
        d = app.true_demands_at(1200)
        x_sat = 1.0 / d["db.disk"]
        cpu_util = x_sat * d["db.cpu"] / 16
        assert 0.30 < cpu_util < 0.45

    def test_load_disk_runs_hot(self):
        # Table 2's second underlined resource.
        app = vins_application()
        d = app.true_demands_at(1200)
        x_sat = 1.0 / d["db.disk"]
        assert x_sat * d["load.disk"] > 0.8

    def test_smaller_datapool_relaxes_disk(self):
        big = vins_application()
        small = vins_application(datapool_records=1_000_000)  # < 8 GB cache
        assert (
            small.true_demands_at(100)["db.disk"]
            < big.true_demands_at(100)["db.disk"]
        )

    def test_custom_cores(self):
        app = vins_application(cpu_cores=8)
        assert app.network["app.cpu"].servers == 8


class TestJPetStore:
    def test_paper_configuration(self):
        app = jpetstore_application()
        assert app.pages == 14
        assert app.datapool.records == 2_000_000
        assert app.network.think_time == 1.0

    def test_cpu_heavy_bottleneck(self):
        app = jpetstore_application()
        assert app.bottleneck(200) in ("db.cpu", "db.disk")
        # per-server demand of db.cpu must rival db.disk (co-saturation)
        d = app.true_demands_at(200)
        assert d["db.cpu"] / 16 == pytest.approx(d["db.disk"], rel=0.2)

    def test_saturation_near_140_users(self):
        from repro.core import asymptotic_bounds

        app = jpetstore_application()
        b = asymptotic_bounds(app.network, 10, demand_level=140)
        assert 100 < b.knee < 200

    def test_demand_bump_at_saturation_onset(self):
        # Fig. 7's 140-168 deviation: db.cpu demand locally exceeds the
        # pure-decay trend near 155 users.
        app = jpetstore_application()
        d = app.network["db.cpu"]
        trend = (d.demand_at(100) + d.demand_at(220)) / 2
        assert d.demand_at(155) > trend

    def test_application_validation(self):
        app = jpetstore_application()
        with pytest.raises(ValueError):
            Application(
                name="x",
                network=app.network,
                workflow="w",
                pages=0,
                datapool=Datapool(records=1),
                max_tested_concurrency=10,
                default_sample_levels=(1,),
            )
        with pytest.raises(ValueError, match="sample levels"):
            Application(
                name="x",
                network=app.network,
                workflow="w",
                pages=1,
                datapool=Datapool(records=1),
                max_tested_concurrency=10,
                default_sample_levels=(1, 20),
            )
