"""ASCII table rendering."""

import pytest

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(("A", "Bee"), [(1, 2.5), (10, 0.333)])
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "A"
        assert "2.50" in out and "0.33" in out

    def test_title_adds_header(self):
        out = format_table(("x",), [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_precision(self):
        out = format_table(("x",), [(1.23456,)], precision=4)
        assert "1.2346" in out

    def test_none_renders_empty(self):
        out = format_table(("x", "y"), [(1, None)])
        assert out.splitlines()[-1].split("|")[1].strip() == ""

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(("a", "b"), [(1,)])

    def test_column_alignment(self):
        out = format_table(("name", "v"), [("long-name-here", 1), ("x", 22)])
        lines = out.splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestFormatSeries:
    def test_layout(self):
        out = format_series("N", [1, 2], {"X": [0.5, 1.0], "R": [1.0, 2.0]})
        assert "N" in out.splitlines()[0]
        assert "0.500" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths"):
            format_series("N", [1, 2], {"X": [0.5]})
