"""Linearizer approximate MVA."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station, exact_multiserver_mva, exact_mva, schweitzer_amva
from repro.core.linearizer import linearizer_amva, linearizer_multiserver_mva


class TestLinearizer:
    def test_exact_at_n1(self, two_station_net):
        r = linearizer_amva(two_station_net, 1)
        assert r.throughput[0] == pytest.approx(1 / 1.13, rel=1e-7)

    def test_close_to_exact(self, two_station_net):
        lin = linearizer_amva(two_station_net, 60)
        ex = exact_mva(two_station_net, 60)
        rel = np.abs(lin.throughput - ex.throughput) / ex.throughput
        assert rel.max() < 0.01

    def test_more_accurate_than_schweitzer(self):
        # Randomized networks: Linearizer's worst error must beat
        # Schweitzer's on average (its raison d'etre).
        rng = np.random.default_rng(5)
        wins = 0
        trials = 8
        for t in range(trials):
            k = rng.integers(2, 5)
            d = rng.uniform(0.02, 0.3, k)
            z = rng.uniform(0.0, 2.0)
            net = ClosedNetwork(
                [Station(f"s{i}", d[i]) for i in range(k)], think_time=z
            )
            ex = exact_mva(net, 40)
            lin = linearizer_amva(net, 40)
            sch = schweitzer_amva(net, 40)
            err_lin = np.abs(lin.throughput - ex.throughput).max()
            err_sch = np.abs(sch.throughput - ex.throughput).max()
            if err_lin <= err_sch + 1e-12:
                wins += 1
        assert wins >= trials - 1

    def test_littles_law(self, two_station_net):
        r = linearizer_amva(two_station_net, 40)
        assert r.littles_law_residual().max() < 1e-8

    def test_saturation_limit(self, two_station_net):
        r = linearizer_amva(two_station_net, 500)
        assert r.throughput[-1] == pytest.approx(1 / 0.08, rel=1e-2)

    def test_demand_override(self, two_station_net):
        r = linearizer_amva(two_station_net, 5, demands=[0.5, 0.01])
        assert r.response_time[0] == pytest.approx(0.51, rel=1e-6)

    def test_validation(self, two_station_net):
        with pytest.raises(ValueError):
            linearizer_amva(two_station_net, 0)


class TestLinearizerMultiserver:
    def test_limits(self, multiserver_net):
        r = linearizer_multiserver_mva(multiserver_net, 300)
        assert r.response_time[0] == pytest.approx(0.45, rel=1e-6)
        assert r.throughput[-1] == pytest.approx(10.0, rel=1e-2)

    def test_beats_schweitzer_seidmann(self, multiserver_net):
        from repro.core import approximate_multiserver_mva

        ex = exact_multiserver_mva(multiserver_net, 80)
        lin = linearizer_multiserver_mva(multiserver_net, 80)
        sch = approximate_multiserver_mva(multiserver_net, 80)
        err_lin = np.abs(lin.throughput - ex.throughput).max()
        err_sch = np.abs(sch.throughput - ex.throughput).max()
        assert err_lin <= err_sch + 1e-9

    def test_original_station_names(self, multiserver_net):
        r = linearizer_multiserver_mva(multiserver_net, 10)
        assert r.station_names == multiserver_net.station_names
