"""Seeded random streams."""

import numpy as np
import pytest

from repro.simulation import RandomStreams, spawn_seeds


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).get("service:cpu").random(8)
        b = RandomStreams(42).get("service:cpu").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_names_independent(self):
        s = RandomStreams(42)
        a = s.get("service:cpu").random(8)
        b = s.get("service:disk").random(8)
        assert not np.array_equal(a, b)

    def test_creation_order_irrelevant(self):
        s1 = RandomStreams(7)
        _ = s1.get("a").random(100)
        x1 = s1.get("b").random(5)
        s2 = RandomStreams(7)
        x2 = s2.get("b").random(5)
        np.testing.assert_array_equal(x1, x2)

    def test_get_is_cached(self):
        s = RandomStreams(0)
        assert s.get("x") is s.get("x")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)


class TestSpawnSeeds:
    def test_pinned_derivation(self):
        # SeedSequence-derived child seeds are part of the reproducibility
        # contract: replication r of a seed-s experiment must land on the
        # same stream forever.
        assert spawn_seeds(7, 3) == [1201125462, 3618983171, 3831650445]

    def test_prefix_stable_and_distinct(self):
        seeds = spawn_seeds(42, 12)
        assert len(set(seeds)) == 12
        assert spawn_seeds(42, 5) == seeds[:5]

    def test_child_streams_differ_from_parent_and_siblings(self):
        parent = RandomStreams(11)
        kids = parent.spawn(3)
        draws = [k.get("svc").random(8) for k in kids]
        assert all(isinstance(k, RandomStreams) for k in kids)
        for i in range(3):
            assert not np.array_equal(draws[i], parent.get("svc").random(8))
            for j in range(i + 1, 3):
                assert not np.array_equal(draws[i], draws[j])

    def test_spawn_deterministic(self):
        a = [k.get("x").random(4) for k in RandomStreams(3).spawn(2)]
        b = [k.get("x").random(4) for k in RandomStreams(3).spawn(2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_validation(self):
        with pytest.raises(ValueError, match="seed"):
            spawn_seeds(-1, 2)
        with pytest.raises(ValueError, match="count"):
            spawn_seeds(3, 0)


class TestExponentialSampler:
    def test_mean_converges(self):
        draw = RandomStreams(1).exponential_sampler("svc", 0.25)
        samples = np.array([draw() for _ in range(20_000)])
        assert samples.mean() == pytest.approx(0.25, rel=0.05)
        assert np.all(samples >= 0)

    def test_zero_mean_constant_zero(self):
        draw = RandomStreams(1).exponential_sampler("svc", 0.0)
        assert draw() == 0.0

    def test_block_refill_preserves_distribution(self):
        # Force multiple refills with a tiny block.
        draw = RandomStreams(5).exponential_sampler("svc", 1.0, block=7)
        samples = np.array([draw() for _ in range(2_000)])
        assert samples.mean() == pytest.approx(1.0, rel=0.1)

    def test_deterministic_across_instances(self):
        d1 = RandomStreams(9).exponential_sampler("svc", 0.5)
        d2 = RandomStreams(9).exponential_sampler("svc", 0.5)
        assert [d1() for _ in range(10)] == [d2() for _ in range(10)]

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).exponential_sampler("svc", -0.1)
