"""Grinder-style load-test driver."""

import numpy as np
import pytest

from repro.loadtest import GrinderProperties, LoadTest, steady_state_window


class TestLoadTest:
    def test_fire_reports_throughput(self, mini_app):
        run = LoadTest(mini_app).fire(virtual_users=5, seed=0, duration=60.0)
        assert run.tps > 0
        assert run.pages_served > 0
        assert run.virtual_users == 5
        assert run.mean_cycle_time == pytest.approx(run.mean_response_time + 1.0)

    def test_default_users_from_properties(self, mini_app):
        props = GrinderProperties(processes=2, threads=3, duration_ms=60_000)
        run = LoadTest(mini_app, properties=props).fire(seed=0)
        assert run.virtual_users == 6

    def test_warmup_after_ramp(self, mini_app):
        props = GrinderProperties(
            processes=4, threads=1, duration_ms=80_000,
            process_increment=1, process_increment_interval_ms=5_000,
        )
        run = LoadTest(mini_app, properties=props).fire(seed=0)
        assert run.warmup >= 15.0  # ramp end at 15s

    def test_ramp_longer_than_duration_rejected(self, mini_app):
        props = GrinderProperties(
            processes=10, threads=1, duration_ms=10_000,
            process_increment=1, process_increment_interval_ms=5_000,
        )
        with pytest.raises(ValueError, match="ramp-up"):
            LoadTest(mini_app, properties=props).fire(seed=0)

    def test_summary_line(self, mini_app):
        run = LoadTest(mini_app).fire(virtual_users=3, seed=0, duration=40.0)
        line = run.summary_line()
        assert "MiniApp" in line and "3 users" in line

    def test_windowed_transients(self, mini_app):
        run = LoadTest(mini_app).fire(virtual_users=5, seed=0, duration=60.0)
        w = run.windowed(10.0)
        assert len(w["throughput"]) >= 5

    def test_invalid_warmup_fraction(self, mini_app):
        with pytest.raises(ValueError):
            LoadTest(mini_app, warmup_fraction=0.95)

    def test_invalid_users(self, mini_app):
        with pytest.raises(ValueError):
            LoadTest(mini_app).fire(virtual_users=0)


class TestSteadyStateWindow:
    def test_stationary_series_settles_immediately(self):
        t = np.linspace(0, 100, 400)
        v = np.full_like(t, 5.0)
        assert steady_state_window(t, v, window=10.0) == pytest.approx(0.0)

    def test_ramp_then_flat(self):
        t = np.linspace(0, 100, 1000)
        v = np.where(t < 30, t / 30 * 5.0, 5.0)
        cut = steady_state_window(t, v, window=10.0)
        assert 15.0 <= cut <= 40.0

    def test_never_settling_returns_late_window(self):
        t = np.linspace(0, 100, 500)
        v = t  # linear growth forever
        cut = steady_state_window(t, v, window=10.0, tolerance=0.01)
        assert cut >= 80.0

    def test_validation(self):
        with pytest.raises(ValueError):
            steady_state_window([1.0], [1.0], window=0.0)
        with pytest.raises(ValueError):
            steady_state_window([1.0, 2.0], [1.0], window=1.0)
