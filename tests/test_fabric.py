"""The execution fabric: work plans, dispatcher, transports, remote workers.

Tentpole coverage for the plan → dispatch → transport split:
:class:`WorkPlan` partitioning, :class:`Dispatcher` parity with the
pre-refactor resilient backend over a local transport, host parsing,
the remote capability gate, the ``solve_shard`` wire op against real
``repro worker`` processes (bit-identical to serial solves), transport
fault injection (``drop-connection`` / ``slow-worker``), dead-fleet
degradation, and checkpoint resume across transports.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.network import ClosedNetwork, Station
from repro.engine import (
    Dispatcher,
    FaultPlan,
    LocalProcessTransport,
    RemoteTransport,
    RetryPolicy,
    WorkPlan,
    WorkerConnectionLost,
    faults,
)
from repro.engine.fabric import RemoteBackend, _check_remote_capability
from repro.engine.supervisor import StaticMembership
from repro.engine.transport import parse_host, parse_hosts
from repro.serve.client import ServeClient
from repro.serve.protocol import encode_scenario
from repro.solvers import (
    Scenario,
    SolverInputError,
    WorkloadClass,
    solve,
    solve_stack,
)
from repro.solvers.facade import SolverCapabilityError
from repro.solvers.registry import get_solver

ATOL = 1e-10
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.deactivate()


@pytest.fixture
def net():
    return ClosedNetwork(
        [Station("web", demand=0.02), Station("db", demand=0.05)], think_time=1.0
    )


@pytest.fixture
def stack(net):
    return [Scenario(net, 12, think_time=0.5 + 0.1 * i) for i in range(8)]


@pytest.fixture
def baseline(stack):
    return solve_stack(stack, method="exact-mva", backend="serial", cache=None)


def _start_worker(cache_path=None, timeout=None, extra=()):
    """Launch ``repro worker --port 0`` and scrape the bound port."""
    cmd = [sys.executable, "-m", "repro", "worker", "--port", "0"]
    if cache_path is not None:
        cmd += ["--cache-path", cache_path]
    if timeout is not None:
        cmd += ["--timeout", str(timeout)]
    cmd += list(extra)
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            assert line.startswith("repro-worker"), line
            return proc, int(line.rsplit(":", 1)[1])
        if not line and proc.poll() is not None:
            raise RuntimeError(f"worker died before binding (rc={proc.returncode})")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("worker never announced its port")


def _stop_worker(proc, port):
    try:
        with ServeClient(port=port, timeout=10.0) as client:
            client.shutdown()
    except Exception:
        proc.terminate()
    try:
        proc.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10.0)


@pytest.fixture
def worker_fleet():
    """Two live ``repro worker`` processes; yields ``(procs, hosts_str)``."""
    workers = [_start_worker() for _ in range(2)]
    hosts = ",".join(f"127.0.0.1:{port}" for _, port in workers)
    try:
        yield workers, hosts
    finally:
        for proc, port in workers:
            if proc.poll() is None:
                _stop_worker(proc, port)


# -- planning ------------------------------------------------------------------


class TestWorkPlan:
    def test_shards_cover_the_stack_contiguously(self, stack):
        spec = get_solver("exact-mva")
        plan = WorkPlan.build(spec, stack, {}, n_shards=3)
        assert plan.method == "exact-mva"
        assert plan.n_scenarios == len(stack)
        assert [s.index for s in plan.shards] == [0, 1, 2]
        assert plan.shards[0].start == 0 and plan.shards[-1].stop == len(stack)
        for prev, nxt in zip(plan.shards, plan.shards[1:]):
            assert prev.stop == nxt.start
        assert sum(s.n_scenarios for s in plan.shards) == len(stack)
        assert plan.shards[0].bounds == (0, 0, plan.shards[0].stop)

    def test_no_checkpoint_means_no_keys(self, stack):
        plan = WorkPlan.build(get_solver("exact-mva"), stack, {}, n_shards=2)
        assert all(s.key is None for s in plan.shards)

    def test_checkpoint_stamps_content_addressed_keys(self, tmp_path, stack):
        from repro.engine import SweepCheckpoint

        ck = SweepCheckpoint(tmp_path / "j.ckpt")
        plan = WorkPlan.build(get_solver("exact-mva"), stack, {}, 2, checkpoint=ck)
        keys = [s.key for s in plan.shards]
        assert all(isinstance(k, str) and len(k) == 64 for k in keys)
        assert len(set(keys)) == len(keys)  # distinct sub-stacks, distinct keys
        again = WorkPlan.build(get_solver("exact-mva"), stack, {}, 2, checkpoint=ck)
        assert [s.key for s in again.shards] == keys  # stable across builds

    def test_child_backend_tracks_kernel_availability(self, stack):
        assert WorkPlan.build(get_solver("exact-mva"), stack, {}, 1).child_backend == "batched"
        assert (
            WorkPlan.build(get_solver("convolution"), stack[:1], {}, 1).child_backend
            == "serial"
        )


# -- host parsing --------------------------------------------------------------


class TestHostParsing:
    def test_parse_host_forms(self):
        assert parse_host("10.0.0.5:9000") == ("10.0.0.5", 9000)
        assert parse_host("localhost") == ("localhost", 7173)
        assert parse_host(("h", 81)) == ("h", 81)
        assert parse_host("bare", default_port=99) == ("bare", 99)

    def test_parse_hosts_list(self):
        assert parse_hosts("a:1, b:2 ,c") == [("a", 1), ("b", 2), ("c", 7173)]
        with pytest.raises(ValueError, match="names no hosts"):
            parse_hosts(" , ")


# -- dispatcher over the local transport ---------------------------------------


class TestDispatcherLocal:
    def test_parity_with_serial_and_resilient(self, stack, baseline):
        spec = get_solver("exact-mva")
        dispatcher = Dispatcher(LocalProcessTransport(2))
        result = dispatcher.run(spec, stack, {})
        np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)
        resilient = solve_stack(stack, method="exact-mva", backend="resilient",
                                workers=2, cache=None)
        assert np.array_equal(result.throughput, resilient.throughput)
        assert np.array_equal(result.utilizations, resilient.utilizations)

    def test_dispatcher_name_defaults_to_transport(self):
        d = Dispatcher(LocalProcessTransport(2))
        assert d.name == "local-processes"
        assert Dispatcher(LocalProcessTransport(2), name="resilient").name == "resilient"

    def test_rejects_bad_errors_mode(self):
        with pytest.raises(ValueError, match="errors must be"):
            Dispatcher(LocalProcessTransport(1), errors="panic")

    def test_local_fan_out_gate(self):
        assert not LocalProcessTransport(1).fan_out(4)
        assert not LocalProcessTransport(4).fan_out(1)
        assert LocalProcessTransport(4).fan_out(4)

    def test_attempt_counter_reset_after_run(self, stack):
        Dispatcher(LocalProcessTransport(2)).run(get_solver("exact-mva"), stack, {})
        assert faults.current_attempt() == 0


# -- the remote capability gate ------------------------------------------------


class TestRemoteCapability:
    def test_multiclass_accepted(self, net):
        mc = Scenario(
            net,
            5,
            classes=(WorkloadClass("a", 3, {"web": 0.02, "db": 0.05}, think_time=1.0),),
        )
        _check_remote_capability(get_solver("exact-multiclass"), [mc], {})
        from repro.serve.protocol import decode_scenario

        assert decode_scenario(encode_scenario(mc)).fingerprint() == mc.fingerprint()

    def test_multiclass_offgrid_level_rejected(self, net):
        mc = Scenario(
            net,
            5,
            demand_level=2.5,
            classes=(
                WorkloadClass(
                    "a", 3, {"web": lambda n: 0.02 + 0.001 * n, "db": 0.05}
                ),
            ),
        )
        with pytest.raises(SolverCapabilityError, match="demand_level"):
            _check_remote_capability(get_solver("exact-multiclass"), [mc], {})

    def test_throughput_axis_rejected(self, stack):
        with pytest.raises(SolverCapabilityError, match="demand_axis"):
            _check_remote_capability(
                get_solver("mvasd"), stack, {"demand_axis": "throughput"}
            )

    def test_unserializable_options_rejected(self, stack):
        with pytest.raises(SolverCapabilityError, match="JSON-serializable"):
            _check_remote_capability(
                get_solver("ld-mva"), stack, {"rates": lambda j: j}
            )

    def test_facade_validation(self, net, stack):
        with pytest.raises(SolverInputError, match="needs hosts"):
            solve_stack(stack, backend="remote", cache=None)
        with pytest.raises(SolverInputError, match="only appl"):
            solve_stack(stack, backend="serial", hosts="127.0.0.1:1", cache=None)
        with pytest.raises(SolverInputError, match="scenario\\s+stacks"):
            solve(Scenario(net, 10), hosts="127.0.0.1:1")

    def test_facade_fleet_validation(self, stack):
        with pytest.raises(SolverInputError, match="mutually exclusive"):
            solve_stack(stack, hosts="127.0.0.1:1", fleet=2, cache=None)
        with pytest.raises(SolverInputError, match="only appl"):
            solve_stack(stack, backend="serial", fleet=2, cache=None)
        with pytest.raises(SolverInputError, match="worker count"):
            solve_stack(stack, fleet=0, cache=None)
        with pytest.raises(SolverInputError, match="FleetSupervisor"):
            solve_stack(stack, fleet=3.5, cache=None)
        with pytest.raises(SolverInputError, match="state file"):
            solve_stack(stack, fleet="/nonexistent/fleet.json", cache=None)


# -- remote transport unit behaviour -------------------------------------------


class TestRemoteTransportUnits:
    def test_preferred_shards_oversubscribes_hosts(self):
        t = RemoteTransport([("h1", 1), ("h2", 2)], shards_per_host=4)
        assert t.preferred_shards(1000) == 8
        assert t.preferred_shards(3) == 3  # never more shards than scenarios
        assert t.fan_out(1)  # even one shard is worth the worker's warm cache

    def test_unreachable_fleet_fails_every_shard(self, stack):
        # nothing listens on these ports; connect must fail fast, and every
        # shard must come back as WorkerConnectionLost, not hang
        t = RemoteTransport([("127.0.0.1", 1), ("127.0.0.1", 2)], connect_timeout=0.5)
        payload = ("exact-mva", "batched", list(stack), {})
        outs = t.run_shards([(0, 0, 4), (1, 4, 8)], payload, timeout=5.0)
        assert all(isinstance(o, WorkerConnectionLost) for o in outs)
        t.close()

    def test_dead_fleet_degrades_to_local_solve(self, stack, baseline):
        result = solve_stack(
            stack, method="exact-mva", cache=None,
            hosts="127.0.0.1:1",
            retry_policy=RetryPolicy(max_retries=0, backoff_base=0.0),
        )
        assert result.backend == "remote"
        np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)


# -- against real workers ------------------------------------------------------


class TestRemoteEndToEnd:
    def test_remote_sweep_bit_identical_to_serial(self, worker_fleet, stack, baseline):
        _, hosts = worker_fleet
        result = solve_stack(stack, method="exact-mva", cache=None, hosts=hosts)
        assert result.backend == "remote"
        for attr in ("throughput", "response_time", "queue_lengths", "utilizations"):
            assert np.array_equal(getattr(result, attr), getattr(baseline, attr)), attr

    def test_varying_demands_cross_the_wire_exactly(self, worker_fleet, net):
        _, hosts = worker_fleet
        sc = [
            Scenario(
                net,
                15,
                demand_functions={
                    "web": lambda n, s=s: 0.02 * s * (1.0 + 0.01 * np.asarray(n)),
                    "db": lambda n: 0.05,
                },
            )
            for s in (0.9, 1.0, 1.1, 1.2)
        ]
        ref = solve_stack(sc, method="mvasd", backend="serial", cache=None)
        remote = solve_stack(sc, method="mvasd", cache=None, hosts=hosts)
        assert np.array_equal(remote.throughput, ref.throughput)
        assert np.array_equal(remote.queue_lengths, ref.queue_lengths)

    def test_multiclass_stack_crosses_the_wire_exactly(self, worker_fleet, net):
        _, hosts = worker_fleet
        sc = [
            Scenario(
                net,
                6,
                classes=(
                    WorkloadClass(
                        "browse", 4, {"web": 0.02 * s, "db": 0.05}, think_time=1.0
                    ),
                    WorkloadClass(
                        "buy",
                        2,
                        {
                            "web": lambda n, s=s: 0.03 * s
                            + 0.001 * np.asarray(n, dtype=float),
                            "db": 0.04,
                        },
                        think_time=0.5,
                    ),
                ),
            )
            for s in (0.9, 1.0, 1.1, 1.2, 1.3, 1.4)
        ]
        # snapshot kind (multiclass-stack)
        ref = solve_stack(sc, method="exact-multiclass", backend="serial", cache=None)
        remote = solve_stack(sc, method="exact-multiclass", cache=None, hosts=hosts)
        assert remote.backend == "remote"
        assert remote.class_names == ref.class_names
        assert np.array_equal(remote.throughput, ref.throughput)
        assert np.array_equal(remote.queue_lengths_by_class, ref.queue_lengths_by_class)
        assert np.array_equal(remote.utilizations, ref.utilizations)
        # trajectory kind (multiclass-trajectory-stack), via method="auto"
        ref_t = solve_stack(sc, backend="serial", cache=None)
        remote_t = solve_stack(sc, cache=None, hosts=hosts)
        assert np.array_equal(remote_t.throughput, ref_t.throughput)
        assert np.array_equal(remote_t.utilizations, ref_t.utilizations)

    def test_worker_killed_mid_fleet_still_finishes(self, worker_fleet, stack, baseline):
        workers, hosts = worker_fleet
        workers[1][0].kill()
        workers[1][0].wait()
        result = solve_stack(stack, method="exact-mva", cache=None, hosts=hosts)
        np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)

    def test_drop_connection_fault_recovers_with_parity(
        self, worker_fleet, stack, baseline
    ):
        _, hosts = worker_fleet
        # every shard's first attempt loses its connection; retry succeeds
        with faults.injected(FaultPlan.parse("drop-connection@attempt=0")):
            result = solve_stack(
                stack, method="exact-mva", cache=None, hosts=hosts,
                retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            )
        assert ("drop-connection", "transport") in {
            (kind, point) for kind, point, *_ in faults.fired()
        }
        np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)

    def test_slow_worker_fault_just_delays(self, worker_fleet, stack, baseline):
        _, hosts = worker_fleet
        with faults.injected(FaultPlan.parse("slow-worker@shard=0,delay=0.2")):
            result = solve_stack(stack, method="exact-mva", cache=None, hosts=hosts)
        np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)

    def test_checkpoint_resume_after_fleet_death(self, worker_fleet, stack, baseline):
        """Shards journaled by remote solves resume bit-identically locally."""
        workers, hosts = worker_fleet
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "remote.ckpt")
            full = solve_stack(
                stack, method="exact-mva", cache=None, hosts=hosts, checkpoint=path
            )
            with open(path) as fh:
                lines = fh.read().splitlines()
            assert len(lines) >= 2
            # crash lost the tail; the whole fleet dies with it
            with open(path, "w") as fh:
                fh.write(lines[0] + "\n")
            for proc, port in workers:
                proc.kill()
                proc.wait()
            resumed = solve_stack(
                stack, method="exact-mva", cache=None, hosts=hosts, checkpoint=path,
                retry_policy=RetryPolicy(max_retries=0, backoff_base=0.0),
            )
            assert np.array_equal(resumed.throughput, full.throughput)
            assert np.array_equal(resumed.utilizations, full.utilizations)
            np.testing.assert_allclose(full.throughput, baseline.throughput, atol=ATOL)

    def test_worker_warm_cache_across_sweeps(self, worker_fleet, stack):
        _, hosts = worker_fleet
        solve_stack(stack, method="exact-mva", cache=None, hosts=hosts)
        before = [
            ServeClient(port=port).cache_stats() for _, port in worker_fleet[0]
        ]
        solve_stack(stack, method="exact-mva", cache=None, hosts=hosts)
        after = [
            ServeClient(port=port).cache_stats() for _, port in worker_fleet[0]
        ]
        gained = sum(a["hits"] - b["hits"] for a, b in zip(after, before))
        assert gained >= 1  # repeated shards hit the workers' memory tier

    def test_fingerprint_mismatch_is_a_structured_error(self, worker_fleet, stack):
        _, hosts = worker_fleet
        host, port = parse_hosts(hosts)[0]
        with ServeClient(host, port, timeout=30.0) as client:
            envelope = client.request(
                {
                    "op": "solve_shard",
                    "method": "exact-mva",
                    "backend": "batched",
                    "start": 0,
                    "scenarios": [encode_scenario(sc) for sc in stack[:2]],
                    "fingerprints": ["0" * 64, "1" * 64],
                    "options": {},
                }
            )
        assert envelope["ok"] is False
        assert "fingerprint mismatch" in envelope["error"]["error"]

    def test_solve_shard_rejects_disallowed_backend(self, worker_fleet, stack):
        _, hosts = worker_fleet
        host, port = parse_hosts(hosts)[0]
        with ServeClient(host, port, timeout=30.0) as client:
            envelope = client.request(
                {
                    "op": "solve_shard",
                    "method": "exact-mva",
                    "backend": "process-sharded",
                    "scenarios": [encode_scenario(stack[0])],
                    "options": {},
                }
            )
        assert envelope["ok"] is False
        assert "auto/serial/batched" in envelope["error"]["error"]


# -- overload shedding and elastic membership ----------------------------------


class TestElasticAndOverload:
    def test_driver_side_admission_shed_retries(self, worker_fleet, stack, baseline):
        """A shed shard is requeued (retry-later), not treated as host death."""
        _, hosts = worker_fleet
        backend = RemoteBackend(hosts=parse_hosts(hosts))
        with faults.injected(FaultPlan.parse("reject-admission@shard=0")):
            result = backend.run(get_solver("exact-mva"), stack, {})
        assert backend.last_transport.overload_retries >= 1
        assert ("reject-admission", "admission") in {
            (kind, point) for kind, point, *_ in faults.fired()
        }
        np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)

    def test_server_side_overload_envelope_retries(self, stack, baseline):
        """A worker shedding load answers Overloaded; the transport retries."""
        proc, port = _start_worker(extra=("--inject-faults", "reject-admission"))
        try:
            backend = RemoteBackend(hosts=[("127.0.0.1", port)])
            result = backend.run(get_solver("exact-mva"), stack, {})
            assert backend.last_transport.overload_retries >= 1
            np.testing.assert_allclose(
                result.throughput, baseline.throughput, atol=ATOL
            )
        finally:
            _stop_worker(proc, port)

    def test_mid_sweep_join_drains_queued_shards(self, worker_fleet, stack, baseline):
        """A host added to the membership mid-sweep picks up queued shards."""
        workers, _ = worker_fleet
        (_, port1), (_, port2) = workers
        membership = StaticMembership([("127.0.0.1", port1)])
        backend = RemoteBackend(membership=membership, reprobe_interval=0.05)
        box: dict = {}

        def run():
            # ~0.15s per shard keeps the lone starting host busy long
            # enough for the join to matter
            with faults.injected(FaultPlan.parse("slow-worker@delay=0.15")):
                box["result"] = backend.run(get_solver("exact-mva"), stack, {})

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.25)
        membership.add("127.0.0.1", port2)
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert backend.last_transport.readmissions >= 1
        np.testing.assert_allclose(
            box["result"].throughput, baseline.throughput, atol=ATOL
        )


# -- CLI surface ---------------------------------------------------------------


class TestFabricCLI:
    def test_sweep_grid_hosts_implies_remote(self, worker_fleet, capsys):
        from repro.cli import main as cli_main

        _, hosts = worker_fleet
        rc = cli_main(
            [
                "sweep-grid",
                "--demands", "0.02,0.05",
                "--population", "12",
                "--scales", "0.9,1.0,1.1",
                "--hosts", hosts,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[remote]" in out
