"""Fig. 17 end-to-end workflow."""

import numpy as np
import pytest

from repro.workflow import predict_performance


@pytest.fixture(scope="module")
def report(mini_sweep):
    return predict_performance(
        mini_sweep.application,
        n_design_points=4,
        max_population=50,
        concurrency_range=(1, 50),
        duration=60.0,
        seed=1,
    )


class TestPredictPerformance:
    def test_design_points_are_chebyshev(self, report):
        from repro.workflow import design_points

        np.testing.assert_array_equal(
            report.design, design_points(4, 1, 50, strategy="chebyshev")
        )

    def test_sweep_ran_at_design_points(self, report):
        np.testing.assert_array_equal(report.sweep.levels, report.design)

    def test_prediction_covers_range(self, report):
        assert report.prediction.max_population == 50
        assert report.prediction.solver == "mvasd"

    def test_validates_against_independent_sweep(self, report, mini_sweep):
        dev = report.validate(mini_sweep)
        # 4 Chebyshev tests are enough to predict the full curve well.
        assert dev["throughput"] < 10.0
        assert dev["cycle_time"] < 10.0

    def test_predicted_at_level(self, report):
        snap = report.predicted_at(20)
        assert snap["population"] == 20
        assert snap["throughput"] > 0

    def test_single_server_variant(self, mini_sweep):
        rep = predict_performance(
            mini_sweep.application,
            n_design_points=3,
            concurrency_range=(1, 50),
            duration=40.0,
            seed=2,
            single_server=True,
        )
        assert rep.prediction.solver == "mvasd-single-server"

    def test_uniform_strategy(self, mini_sweep):
        rep = predict_performance(
            mini_sweep.application,
            n_design_points=3,
            concurrency_range=(1, 50),
            strategy="uniform",
            duration=40.0,
            seed=2,
        )
        assert rep.design[0] == 1 and rep.design[-1] == 50
