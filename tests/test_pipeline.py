"""Fig. 17 end-to-end workflow."""

import numpy as np
import pytest

from repro.workflow import predict_performance, predict_performance_grid


@pytest.fixture(scope="module")
def report(mini_sweep):
    return predict_performance(
        mini_sweep.application,
        n_design_points=4,
        max_population=50,
        concurrency_range=(1, 50),
        duration=60.0,
        seed=1,
    )


class TestPredictPerformance:
    def test_design_points_are_chebyshev(self, report):
        from repro.workflow import design_points

        np.testing.assert_array_equal(
            report.design, design_points(4, 1, 50, strategy="chebyshev")
        )

    def test_sweep_ran_at_design_points(self, report):
        np.testing.assert_array_equal(report.sweep.levels, report.design)

    def test_prediction_covers_range(self, report):
        assert report.prediction.max_population == 50
        assert report.prediction.solver == "mvasd"

    def test_validates_against_independent_sweep(self, report, mini_sweep):
        dev = report.validate(mini_sweep)
        # 4 Chebyshev tests are enough to predict the full curve well.
        assert dev["throughput"] < 10.0
        assert dev["cycle_time"] < 10.0

    def test_predicted_at_level(self, report):
        snap = report.predicted_at(20)
        assert snap["population"] == 20
        assert snap["throughput"] > 0

    def test_single_server_variant(self, mini_sweep):
        rep = predict_performance(
            mini_sweep.application,
            n_design_points=3,
            concurrency_range=(1, 50),
            duration=40.0,
            seed=2,
            single_server=True,
        )
        assert rep.prediction.solver == "mvasd-single-server"

    def test_uniform_strategy(self, mini_sweep):
        rep = predict_performance(
            mini_sweep.application,
            n_design_points=3,
            concurrency_range=(1, 50),
            strategy="uniform",
            duration=40.0,
            seed=2,
        )
        assert rep.design[0] == 1 and rep.design[-1] == 50


class TestPredictPerformanceGrid:
    VARIANTS = [
        {"n_design_points": 3, "strategy": "uniform"},
        {"n_design_points": 4, "strategy": "chebyshev"},
    ]
    COMMON = dict(concurrency_range=(1, 50), duration=40.0, seed=2)

    def test_reports_in_variant_order(self, mini_sweep):
        reports = predict_performance_grid(
            mini_sweep.application, self.VARIANTS, **self.COMMON
        )
        assert len(reports) == 2
        assert len(reports[0].design) == 3 and len(reports[1].design) == 4
        for report, variant in zip(reports, self.VARIANTS):
            single = predict_performance(
                mini_sweep.application, **{**self.COMMON, **variant}
            )
            np.testing.assert_array_equal(report.design, single.design)
            np.testing.assert_array_equal(
                report.prediction.throughput, single.prediction.throughput
            )

    def test_parallel_matches_serial(self, mini_sweep):
        serial = predict_performance_grid(
            mini_sweep.application, self.VARIANTS, workers=1, **self.COMMON
        )
        parallel = predict_performance_grid(
            mini_sweep.application, self.VARIANTS, workers=2, **self.COMMON
        )
        for a, b in zip(serial, parallel):
            np.testing.assert_array_equal(a.sweep.throughput, b.sweep.throughput)
            np.testing.assert_array_equal(
                a.prediction.throughput, b.prediction.throughput
            )

    def test_reports_usable_downstream(self, mini_sweep):
        reports = predict_performance_grid(
            mini_sweep.application, self.VARIANTS[:1], workers=2, **self.COMMON
        )
        # Reassembled sweeps carry the live application again.
        assert reports[0].sweep.application is mini_sweep.application
        assert reports[0].predicted_at(20)["throughput"] > 0

    def test_empty_variants_rejected(self, mini_sweep):
        with pytest.raises(ValueError, match="variant"):
            predict_performance_grid(mini_sweep.application, [], **self.COMMON)
