"""Model-comparison harness (Tables 4-5)."""

import pytest

from repro.analysis import compare_models


@pytest.fixture(scope="module")
def comparison(mini_sweep):
    return compare_models(
        mini_sweep,
        max_population=50,
        mva_levels=(1, 10, 35),
        include_throughput_axis=True,
        include_approximate=True,
    )


class TestCompareModels:
    def test_all_expected_models_present(self, comparison):
        names = set(comparison.results)
        assert {
            "MVASD",
            "MVASD: Single-Server",
            "MVASD: Throughput-Axis",
            "MVA 1",
            "MVA 10",
            "MVA 35",
            "ApproxMVA 1",
        } <= names

    def test_deviations_for_every_model(self, comparison):
        assert set(comparison.deviations) == set(comparison.results)
        for report in comparison.deviations.values():
            assert report["throughput"] >= 0
            assert report["cycle_time"] >= 0

    def test_paper_shape_mvasd_beats_every_mva_i(self, comparison):
        # The headline claim of Tables 4-5.
        mvasd_dev = comparison.deviations["MVASD"]["throughput"]
        for level in (1, 10, 35):
            assert mvasd_dev <= comparison.deviations[f"MVA {level}"]["throughput"]

    def test_best_returns_minimum(self, comparison):
        best = comparison.best("throughput")
        best_dev = comparison.deviations[best]["throughput"]
        assert all(
            best_dev <= rep["throughput"] for rep in comparison.deviations.values()
        )

    def test_table_rendering(self, comparison):
        text = comparison.table()
        assert "MVASD" in text
        assert "Deviation (%)" in text
        assert "MiniApp" in text

    def test_unswept_mva_level_rejected(self, mini_sweep):
        with pytest.raises(KeyError, match="was not swept"):
            compare_models(mini_sweep, mva_levels=(7,))

    def test_default_levels_and_population(self, mini_sweep):
        cmp_ = compare_models(mini_sweep)
        assert cmp_.max_population == 50
        assert any(name.startswith("MVA ") for name in cmp_.results)
