"""The ``repro serve`` service: protocol, provenance, restarts, timeouts.

The tentpole acceptance claims live here: a long-lived process answers
solve / what-if / bottleneck queries over JSON lines, served results are
*exactly* equal to direct solves (floats round-trip through JSON), and
a restarted server is warm because the sqlite tier survives it.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.serve import ServeClient, ServeError, decode_scenario, encode_result
from repro.serve.protocol import ProtocolError, decode_request, error_envelope
from repro.serve.server import _provenance_counts, _provenance_label
from repro.solvers import Scenario, solve

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _scenario_payload(cpu=0.05, disk=0.08, n=40):
    # Single-server stations: the requests below force method="exact-mva",
    # which the facade now rejects for servers>1 scenarios.
    return {
        "stations": [
            {"name": "cpu", "demand": cpu},
            {"name": "disk", "demand": disk},
        ],
        "think_time": 1.0,
        "max_population": n,
    }


def _start_server(cache_path=None, timeout=None, extra=()):
    """Launch ``repro serve --port 0`` and scrape the bound port."""
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0"]
    if cache_path is not None:
        cmd += ["--cache-path", cache_path]
    if timeout is not None:
        cmd += ["--timeout", str(timeout)]
    cmd += list(extra)
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            return proc, port
        if not line and proc.poll() is not None:
            raise RuntimeError(f"serve died before binding (rc={proc.returncode})")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("serve never announced its port")


def _stop_server(proc, port):
    try:
        with ServeClient(port=port, timeout=10.0) as client:
            client.shutdown()
    except Exception:
        proc.terminate()
    try:
        proc.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10.0)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One shared server (sqlite-backed) for the read-only protocol tests."""
    db = str(tmp_path_factory.mktemp("serve") / "cache.sqlite")
    proc, port = _start_server(cache_path=db)
    yield {"port": port, "db": db}
    _stop_server(proc, port)


# -- protocol units (no sockets) ---------------------------------------------


class TestProtocol:
    def test_decode_scenario_round_trip(self):
        payload = _scenario_payload()
        payload["stations"][0]["servers"] = 2
        sc = decode_scenario(payload)
        assert sc.max_population == 40
        net = sc.resolved_network()
        assert [st.name for st in net.stations] == ["cpu", "disk"]
        assert net.stations[0].servers == 2
        assert net.think_time == 1.0

    def test_decode_scenario_demand_table(self):
        payload = _scenario_payload()
        payload["stations"][0]["demand"] = {"levels": [1, 100], "values": [0.4, 0.1]}
        sc = decode_scenario(payload)
        fn = sc.resolved_network().stations[0].demand
        assert float(fn(1)) == 0.4
        assert float(fn(100)) == pytest.approx(0.1)
        assert 0.1 < float(fn(50)) < 0.4

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.pop("max_population"), "missing required key"),
            (lambda p: p.update(stations=[]), "non-empty list"),
            (lambda p: p["stations"][0].pop("demand"), "name and demand"),
            (
                lambda p: p["stations"][0].update(demand={"levels": [1], "values": [2]}),
                "two points",
            ),
            (
                lambda p: p["stations"][0].update(
                    demand={"levels": [5, 1], "values": [1, 2]}
                ),
                "strictly increasing",
            ),
        ],
    )
    def test_decode_scenario_rejects_junk(self, mutate, message):
        payload = _scenario_payload()
        mutate(payload)
        with pytest.raises(ProtocolError, match=message):
            decode_scenario(payload)

    def test_decode_request_rejects_junk(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_request(b"{nope")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_request(b"[1, 2]")
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request(b'{"op": "explode"}')

    def test_encode_result_floats_round_trip_exactly(self, two_station_net):
        result = solve(Scenario(two_station_net, 30), method="exact-mva", cache=None)
        wire = json.loads(json.dumps(encode_result(result)))
        assert wire["kind"] == "mva"
        assert np.array_equal(np.array(wire["throughput"]), result.throughput)
        assert np.array_equal(np.array(wire["queue_lengths"]), result.queue_lengths)

    def test_error_envelope_mirrors_scenario_failure(self):
        env = error_envelope(7, ValueError("boom"), fingerprint="fp", solver="mvasd")
        assert env["ok"] is False and env["id"] == 7
        assert env["error"] == {
            "type": "ValueError",
            "error": "boom",
            "fingerprint": "fp",
            "solver": "mvasd",
        }

    def test_provenance_label_priority(self):
        class Snap:
            def __init__(self, **kw):
                fields = (
                    "hits persistent_hits trajectory_hits trajectory_extends "
                    "misses uncacheable"
                ).split()
                for f in fields:
                    setattr(self, f, kw.get(f, 0))

        counts = _provenance_counts(Snap(), Snap(misses=1))
        assert counts["cold"] == 1
        assert _provenance_label(counts) == "cold"
        counts = _provenance_counts(Snap(), Snap(misses=1, trajectory_hits=1))
        assert counts["cold"] == 0
        assert _provenance_label(counts) == "trajectory-prefix"
        assert _provenance_label(_provenance_counts(Snap(), Snap(hits=1))) == "memory"
        assert _provenance_label(_provenance_counts(Snap(), Snap())) == "uncached"


# -- the live server ----------------------------------------------------------


class TestServe:
    def test_ping(self, server):
        with ServeClient(port=server["port"]) as client:
            pong = client.ping()
        assert pong["pong"] is True and pong["pid"] > 0

    def test_solve_parity_and_provenance(self, server):
        payload = _scenario_payload(n=40)
        with ServeClient(port=server["port"]) as client:
            first = client.request(
                {"op": "solve", "scenario": payload, "method": "exact-mva"}
            )
            second = client.request(
                {"op": "solve", "scenario": payload, "method": "exact-mva"}
            )
        assert first["ok"] and first["provenance"] == "cold"
        assert second["ok"] and second["provenance"] == "memory"
        direct = solve(decode_scenario(payload), method="exact-mva", cache=None)
        served = np.array(first["result"]["throughput"])
        assert np.array_equal(served, direct.throughput)  # parity 0.0
        assert np.array_equal(np.array(second["result"]["throughput"]), direct.throughput)

    def test_solve_at_snapshot(self, server):
        payload = _scenario_payload(cpu=0.06, n=30)
        with ServeClient(port=server["port"]) as client:
            result = client.solve(payload, method="exact-mva", at=30)
        assert result["kind"] == "at"
        direct = solve(decode_scenario(payload), method="exact-mva", cache=None)
        assert result["throughput"] == direct.at(30)["throughput"]

    def test_whatif_rides_the_trajectory(self, server):
        payload = _scenario_payload(cpu=0.07, n=50)
        with ServeClient(port=server["port"]) as client:
            deep = client.request(
                {"op": "solve", "scenario": payload, "method": "exact-mva"}
            )
            envelope = client.request(
                {
                    "op": "whatif",
                    "scenario": payload,
                    "populations": [10, 25, 40],
                    "method": "exact-mva",
                }
            )
        assert deep["ok"] and envelope["ok"]
        assert envelope["provenance"] == {
            "memory": 0,
            "persistent": 0,
            "trajectory-prefix": 3,
            "trajectory-extend": 0,
            "cold": 0,
            "uncacheable": 0,
        }
        snapshots = envelope["result"]["snapshots"]
        assert [s["population"] for s in snapshots] == [10, 25, 40]
        for snap in snapshots:
            direct = solve(
                decode_scenario({**payload, "max_population": snap["population"]}),
                method="exact-mva",
                cache=None,
            )
            assert snap["throughput"] == direct.at(snap["population"])["throughput"]

    def test_solve_stack(self, server):
        scenarios = [_scenario_payload(cpu=c, n=20) for c in (0.04, 0.05, 0.09)]
        with ServeClient(port=server["port"]) as client:
            result = client.call("solve_stack", scenarios=scenarios, method="exact-mva")
        assert result["kind"] == "batched"
        assert result["count"] == 3 and result["failures"] == []
        assert len(result["peak_throughput"]) == 3
        # heavier demand -> lower peak throughput
        assert result["peak_throughput"][0] > result["peak_throughput"][2]

    def test_bottlenecks(self, server):
        payload = _scenario_payload(cpu=0.03, disk=0.11, n=25)
        with ServeClient(port=server["port"]) as client:
            result = client.call("bottlenecks", scenario=payload)
        assert result["kind"] == "bottlenecks"
        assert result["stations"][0] == "disk"  # largest demand dominates
        assert result["population"] == 25

    def test_compose_hierarchy_with_flat_check(self, server):
        payload = {
            "stations": [
                {"name": "gw", "demand": 0.012, "servers": 2},
                {"name": "srv", "demand": 0.02, "servers": 4},
                {"name": "disk1", "demand": 0.03},
                {"name": "disk2", "demand": 0.025},
            ],
            "think_time": 1.0,
            "max_population": 40,
        }
        groups = [
            {"stations": ["disk1", "disk2"], "name": "disks"},
            {"stations": ["srv", "disks"], "name": "server"},
        ]
        with ServeClient(port=server["port"]) as client:
            first = client.request(
                {
                    "op": "compose",
                    "scenario": payload,
                    "aggregates": groups,
                    "flat_check": True,
                }
            )
            second = client.request(
                {
                    "op": "compose",
                    "scenario": payload,
                    "aggregates": groups,
                    "flat_check": True,
                }
            )
        assert first["ok"] and second["ok"]
        result = first["result"]
        assert result["composition"]["stations"] == ["gw", "server"]
        names = [a["name"] for a in result["composition"]["aggregates"]]
        assert names == ["disks", "server"]
        for agg in result["composition"]["aggregates"]:
            assert agg["max_population"] == 40
            assert len(agg["source_fingerprint"]) == 64
        assert result["flat_parity"] <= 1e-8
        assert len(result["throughput"]) == 40
        # every subsystem solve of the repeat is a memory hit
        assert second["provenance"] == "memory"
        assert second["result"]["throughput"] == result["throughput"]

    def test_compose_rejects_empty_aggregates(self, server):
        payload = _scenario_payload(n=10)
        with ServeClient(port=server["port"]) as client:
            with pytest.raises(ServeError) as excinfo:
                client.call("compose", scenario=payload, aggregates=[])
        assert "non-empty aggregates list" in excinfo.value.envelope["error"]["error"]

    def test_rate_tables_scenario_over_the_wire(self, server):
        n = 12
        payload = {
            "stations": [
                {"name": "cpu", "demand": 0.05},
                {"name": "disk", "demand": 0.08},
            ],
            "think_time": 1.0,
            "max_population": n,
            "rate_tables": {"cpu": [min(j, 3) / 0.05 for j in range(1, n + 1)]},
        }
        with ServeClient(port=server["port"]) as client:
            result = client.solve(payload)
        assert result["solver"] == "exact-load-dependent-mva"
        direct = solve(decode_scenario(payload), cache=None)
        assert np.array_equal(np.array(result["throughput"]), direct.throughput)

    def test_error_envelope_for_bad_scenario(self, server):
        with ServeClient(port=server["port"]) as client:
            with pytest.raises(ServeError) as excinfo:
                client.solve({"stations": [], "max_population": 10})
        error = excinfo.value.envelope["error"]
        assert error["type"] == "ProtocolError"
        assert "non-empty list" in error["error"]

    def test_error_envelope_for_unknown_op(self, server):
        with ServeClient(port=server["port"]) as client:
            envelope = client.request({"op": "explode"})
        assert envelope["ok"] is False
        assert "unknown op" in envelope["error"]["error"]

    def test_junk_line_answers_instead_of_killing_connection(self, server):
        with ServeClient(port=server["port"]) as client:
            client._file.write(b"{not json\n")
            client._file.flush()
            envelope = json.loads(client._readline_bounded())
            assert envelope["ok"] is False
            assert client.ping()["pong"] is True  # connection still alive

    def test_cache_stats_op(self, server):
        with ServeClient(port=server["port"]) as client:
            stats = client.cache_stats()
        assert stats["requests_handled"] > 0
        assert stats["persistent"]["path"] == server["db"]
        assert "trajectory" in stats

    def test_query_cli(self, server, capsys):
        rc = cli_main(
            ["query", '{"op": "ping"}', "--port", str(server["port"])]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert json.loads(out)["result"]["pong"] is True

    def test_query_cli_error_exit_code(self, server, capsys):
        rc = cli_main(
            [
                "query",
                '{"op": "solve", "scenario": {"stations": [], "max_population": 3}}',
                "--port",
                str(server["port"]),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert json.loads(out)["ok"] is False


# -- lifecycle: restarts and timeouts (dedicated servers) ---------------------


class TestServeLifecycle:
    def test_restart_is_warm_from_persistent_tier(self, tmp_path):
        """The tentpole claim: the sqlite tier outlives the process."""
        db = str(tmp_path / "cache.sqlite")
        payload = _scenario_payload(n=35)
        request = {"op": "solve", "scenario": payload, "method": "exact-mva"}

        proc, port = _start_server(cache_path=db)
        try:
            with ServeClient(port=port) as client:
                cold = client.request(request)
        finally:
            _stop_server(proc, port)
        assert cold["provenance"] == "cold"
        assert proc.returncode == 0

        proc, port = _start_server(cache_path=db)
        try:
            with ServeClient(port=port) as client:
                warm = client.request(request)
                # the persistent hit re-seeds the trajectory store
                prefix = client.request(
                    {
                        "op": "solve",
                        "scenario": {**payload, "max_population": 12},
                        "method": "exact-mva",
                    }
                )
        finally:
            _stop_server(proc, port)
        assert warm["provenance"] == "persistent"
        assert warm["result"]["throughput"] == cold["result"]["throughput"]
        assert prefix["provenance"] == "trajectory-prefix"

    def test_request_timeout_answers_with_envelope(self):
        proc, port = _start_server(timeout=0.1)
        try:
            with ServeClient(port=port, timeout=30.0) as client:
                envelope = client.request(
                    {
                        "op": "solve",
                        "scenario": _scenario_payload(n=200_000),
                        "method": "exact-mva",
                    }
                )
                assert envelope["ok"] is False
                assert envelope["error"]["type"] == "TimeoutError"
                assert "0.1s request timeout" in envelope["error"]["error"]
        finally:
            _stop_server(proc, port)


# -- client response correlation (scripted fake server) ------------------------


class _ScriptedServer:
    """A raw TCP stub standing in for repro-serve in client-protocol tests."""

    def __init__(self, handler):
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.port = self._sock.getsockname()[1]
        self._handler = handler
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._sock.accept()
        try:
            self._handler(conn.makefile("rwb"))
        except (OSError, ValueError):
            pass
        finally:
            conn.close()

    def close(self):
        self._sock.close()
        self._thread.join(timeout=5.0)


def _reply(f, request_id, **extra):
    f.write(json.dumps({"ok": True, "id": request_id, "result": extra}).encode() + b"\n")


class TestClientCorrelation:
    def test_mismatched_response_id_desynchronizes(self):
        def handler(f):
            f.readline()
            _reply(f, 999_999)  # an id the client never sent
            f.flush()

        srv = _ScriptedServer(handler)
        try:
            with ServeClient(port=srv.port, timeout=5.0) as client:
                with pytest.raises(ConnectionError, match="desynchronized"):
                    client.request({"op": "ping"})
        finally:
            srv.close()

    def test_late_reply_after_timeout_is_skipped(self):
        """The delayed-response regression: a stale answer must not be
        mis-delivered to the *next* request on the same connection."""
        ids = []

        def handler(f):
            ids.append(json.loads(f.readline())["id"])
            time.sleep(0.5)  # past the client's read timeout
            ids.append(json.loads(f.readline())["id"])
            for request_id in ids:  # stale answer first, then the real one
                _reply(f, request_id, seq=request_id)
            f.flush()

        srv = _ScriptedServer(handler)
        try:
            with ServeClient(port=srv.port, timeout=0.2) as client:
                with pytest.raises(OSError):
                    client.request({"op": "ping"})
                client._sock.settimeout(10.0)  # only the first read times out
                envelope = client.request({"op": "ping"})
            assert len(ids) == 2 and ids[0] != ids[1]
            assert envelope["id"] == ids[1]
            assert envelope["result"]["seq"] == ids[1]
        finally:
            srv.close()

    def test_oversized_response_line_rejected(self, monkeypatch):
        import repro.serve.client as client_mod

        monkeypatch.setattr(client_mod, "MAX_LINE_BYTES", 1024)

        def handler(f):
            f.readline()
            f.write(b"x" * 5000 + b"\n")
            f.flush()

        srv = _ScriptedServer(handler)
        try:
            with ServeClient(port=srv.port, timeout=5.0) as client:
                with pytest.raises(ConnectionError, match="exceeds 1024 bytes"):
                    client.request({"op": "ping"})
        finally:
            srv.close()


# -- admission control and graceful drain --------------------------------------


def _slow_solve_request(n=300_000):
    return {"op": "solve", "scenario": _scenario_payload(n=n), "method": "exact-mva"}


class TestAdmissionControl:
    def test_health_op(self, server):
        with ServeClient(port=server["port"]) as client:
            h = client.health()
        assert h["pid"] > 0
        assert h["uptime"] >= 0.0
        assert h["draining"] is False
        assert h["in_flight"] == 0
        assert h["max_concurrent"] == 1
        assert set(h["cache"]) == {"hits", "misses", "size"}

    def test_injected_admission_rejection_sheds_exactly_once(self):
        proc, port = _start_server(extra=("--inject-faults", "reject-admission"))
        try:
            request = {
                "op": "solve",
                "scenario": _scenario_payload(n=10),
                "method": "exact-mva",
            }
            with ServeClient(port=port) as client:
                shed = client.request(request)
                assert shed["ok"] is False
                assert shed["error"]["type"] == "Overloaded"
                retried = client.request(request)
                assert retried["ok"] is True
                assert client.health()["overload_rejections"] == 1
        finally:
            _stop_server(proc, port)

    def test_queue_full_sheds_with_overloaded_envelope(self):
        proc, port = _start_server(
            extra=("--max-concurrent", "1", "--admission-queue", "0")
        )
        try:
            box = {}

            def run_slow():
                with ServeClient(port=port, timeout=120.0) as client:
                    box["slow"] = client.request(_slow_solve_request())

            thread = threading.Thread(target=run_slow)
            thread.start()
            time.sleep(0.5)  # the slow solve is now holding the only slot
            with ServeClient(port=port, timeout=30.0) as client:
                shed = client.request(
                    {
                        "op": "solve",
                        "scenario": _scenario_payload(n=10),
                        "method": "exact-mva",
                    }
                )
                assert shed["ok"] is False
                assert shed["error"]["type"] == "Overloaded"
                assert "retry later" in shed["error"]["error"]
                # control ops bypass the admission gate
                assert client.request({"op": "ping"})["ok"] is True
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            assert box["slow"]["ok"] is True
        finally:
            _stop_server(proc, port)


class TestGracefulDrain:
    def _start_slow_solve(self, port, box):
        def run_slow():
            with ServeClient(port=port, timeout=120.0) as client:
                box["slow"] = client.request(_slow_solve_request())

        thread = threading.Thread(target=run_slow)
        thread.start()
        time.sleep(0.5)  # in flight before the drain lands
        return thread

    def test_drain_op_finishes_inflight_and_exits_zero(self):
        proc, port = _start_server()
        box = {}
        try:
            thread = self._start_slow_solve(port, box)
            with ServeClient(port=port, timeout=30.0) as client:
                d = client.drain()
            assert d["draining"] is True
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            assert box["slow"]["ok"] is True
            assert proc.wait(timeout=60.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)

    def test_sigterm_drains_without_dropping_inflight(self):
        proc, port = _start_server()
        box = {}
        try:
            thread = self._start_slow_solve(port, box)
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            assert box["slow"]["ok"] is True
            assert proc.wait(timeout=60.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
