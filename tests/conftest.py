"""Shared fixtures.

Expensive artefacts (load-test sweeps, dense reference solves) are
session-scoped and built on small, fast configurations — short DES
durations and scaled-down population ranges — chosen so the qualitative
structure (bottlenecks, saturation, demand decay) survives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import Application, Datapool, DemandProfile, three_tier_network
from repro.core import ClosedNetwork, Station
from repro.loadtest import run_sweep


@pytest.fixture
def two_station_net() -> ClosedNetwork:
    """Tiny single-server network with think time (hand-checkable)."""
    return ClosedNetwork(
        [Station("cpu", 0.05), Station("disk", 0.08)], think_time=1.0
    )


@pytest.fixture
def multiserver_net() -> ClosedNetwork:
    """4-core CPU bottleneck plus a disk — the Fig. 3 configuration."""
    return ClosedNetwork(
        [Station("cpu", 0.4, servers=4), Station("disk", 0.05)], think_time=1.0
    )


@pytest.fixture
def manycore_net() -> ClosedNetwork:
    """16-core bottleneck — the numerically hard case."""
    return ClosedNetwork(
        [Station("cpu", 0.15, servers=16), Station("disk", 0.01)], think_time=1.0
    )


@pytest.fixture
def varying_net() -> ClosedNetwork:
    """Network whose CPU demand decays with concurrency."""
    cpu = DemandProfile.exp_decay(0.4, 0.25, 50.0)
    return ClosedNetwork(
        [Station("cpu", cpu, servers=4), Station("disk", 0.05)], think_time=1.0
    )


def _mini_app(name: str = "MiniApp") -> Application:
    """A scaled-down three-tier application for fast end-to-end tests.

    Saturates (db.disk) around N~35 so short sweeps cover the whole
    throughput curve.
    """
    profiles = {
        "load.cpu": DemandProfile.exp_decay(0.030, 0.024, 30.0),
        "load.disk": DemandProfile.exp_decay(0.012, 0.009, 30.0),
        "load.net_tx": DemandProfile.exp_decay(0.004, 0.003, 30.0),
        "load.net_rx": DemandProfile.exp_decay(0.004, 0.003, 30.0),
        "app.cpu": DemandProfile.exp_decay(0.120, 0.090, 30.0),
        "app.disk": DemandProfile.exp_decay(0.008, 0.006, 30.0),
        "app.net_tx": DemandProfile.exp_decay(0.005, 0.004, 30.0),
        "app.net_rx": DemandProfile.exp_decay(0.005, 0.004, 30.0),
        "db.cpu": DemandProfile.exp_decay(0.150, 0.110, 30.0),
        "db.disk": DemandProfile.exp_decay(0.065, 0.050, 30.0),
        "db.net_tx": DemandProfile.exp_decay(0.004, 0.003, 30.0),
        "db.net_rx": DemandProfile.exp_decay(0.004, 0.003, 30.0),
    }
    network = three_tier_network(profiles, think_time=1.0, cpu_cores=4, name=name)
    return Application(
        name=name,
        network=network,
        workflow="mini",
        pages=3,
        datapool=Datapool(records=1000),
        max_tested_concurrency=60,
        default_sample_levels=(1, 5, 10, 20, 35, 50),
    )


@pytest.fixture
def mini_app() -> Application:
    return _mini_app()


@pytest.fixture(scope="session")
def mini_sweep():
    """A measured sweep over the mini application (shared across tests)."""
    return run_sweep(_mini_app(), duration=80.0, seed=11)


def assert_monotone_nondecreasing(arr, rel_slack: float = 0.0) -> None:
    arr = np.asarray(arr, dtype=float)
    drops = np.diff(arr) < -rel_slack * np.abs(arr[:-1])
    assert not drops.any(), f"sequence decreases at indices {np.nonzero(drops)[0]}"
