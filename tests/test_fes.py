"""Hierarchical composition: flow-equivalent aggregation (repro.solvers.fes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClosedNetwork, Station
from repro.core.ld_mva import exact_load_dependent_mva, multiserver_rates
from repro.solvers import (
    FESStation,
    Scenario,
    SolverCache,
    SolverCapabilityError,
    SolverInputError,
    aggregate,
    auto_method,
    compose,
    solve,
)


@pytest.fixture
def tiered_net() -> ClosedNetwork:
    """Gateway -> server (cpu + two disks) -> db, closed by think time."""
    return ClosedNetwork(
        [
            Station("gw.cpu", 0.012, servers=2),
            Station("srv.cpu", 0.03, servers=4),
            Station("srv.disk1", 0.02),
            Station("srv.disk2", 0.025),
            Station("db.cpu", 0.018, servers=2),
            Station("db.disk", 0.035),
            Station("lan", 0.006, kind="delay"),
        ],
        think_time=1.0,
    )


class TestAggregate:
    def test_single_server_station_rate_table_is_its_rate_law(self):
        # FES of one single-server queue in isolation: X_sub(j) = 1/D.
        net = ClosedNetwork([Station("a", 0.05), Station("b", 0.08)], think_time=1.0)
        fes = aggregate(Scenario(net, 10), ["a"], cache=None)
        np.testing.assert_allclose(fes.rates, np.full(10, 20.0), rtol=1e-12)

    def test_members_normalized_to_network_order(self, tiered_net):
        sc = Scenario(tiered_net, 20)
        fes = aggregate(sc, ["srv.disk2", "srv.disk1"], cache=None)
        assert fes.members == ("srv.disk1", "srv.disk2")

    def test_default_name_and_provenance(self, tiered_net):
        sc = Scenario(tiered_net, 15)
        fes = aggregate(sc, ["srv.disk1", "srv.disk2"], cache=None)
        assert fes.name == "fes:srv.disk1+srv.disk2"
        assert fes.max_population == 15
        assert fes.solver  # concrete solver name, not "auto"
        assert len(fes.source_fingerprint) == 64

    def test_deeper_sampling(self, tiered_net):
        sc = Scenario(tiered_net, 10)
        fes = aggregate(sc, ["srv.disk1"], max_population=25, cache=None)
        assert fes.max_population == 25

    def test_rejects_unknown_station(self, tiered_net):
        with pytest.raises(SolverInputError, match="unknown station"):
            aggregate(Scenario(tiered_net, 10), ["nope"], cache=None)

    def test_rejects_empty_and_duplicates(self, tiered_net):
        sc = Scenario(tiered_net, 10)
        with pytest.raises(SolverInputError, match="at least one"):
            aggregate(sc, [], cache=None)
        with pytest.raises(SolverInputError, match="duplicate"):
            aggregate(sc, ["lan", "lan"], cache=None)

    def test_rejects_zero_demand_subsystem(self):
        net = ClosedNetwork([Station("idle", 0.0), Station("b", 0.1)], think_time=1.0)
        with pytest.raises(SolverInputError, match="zero total demand"):
            aggregate(Scenario(net, 5), ["idle"], cache=None)

    def test_rejects_varying_and_multiclass(self, varying_net):
        with pytest.raises(SolverInputError, match="varying-demand"):
            aggregate(Scenario(varying_net, 10), ["cpu"], cache=None)
        from repro.solvers import WorkloadClass

        net = ClosedNetwork([Station("a", 0.05)], think_time=1.0)
        multi = Scenario(
            net,
            10,
            classes=(WorkloadClass("c1", 5, {"a": 0.05}, think_time=1.0),),
        )
        with pytest.raises(SolverInputError, match="multi-class"):
            aggregate(multi, ["a"], cache=None)


class TestAggregateParity:
    """Satellite: FES of a single C-server station vs its known rate laws."""

    @settings(max_examples=25, deadline=None)
    @given(
        demand=st.floats(min_value=0.01, max_value=0.5),
        servers=st.integers(min_value=1, max_value=8),
        population=st.integers(min_value=1, max_value=30),
    )
    def test_c_server_fes_equals_multiserver_rate_law(
        self, demand, servers, population
    ):
        # In isolation every customer queues at the single station, so
        # X_sub(j) = min(j, C)/D exactly — the multiserver_rates law.
        net = ClosedNetwork(
            [Station("cpu", demand, servers=servers), Station("disk", 0.01)],
            think_time=1.0,
        )
        fes = aggregate(Scenario(net, population), ["cpu"], cache=None)
        law = multiserver_rates(demand, servers)
        expected = [law(j) for j in range(1, population + 1)]
        np.testing.assert_allclose(fes.rates, expected, rtol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        demand=st.floats(min_value=0.05, max_value=0.4),
        servers=st.integers(min_value=2, max_value=6),
        think=st.floats(min_value=0.5, max_value=3.0),
    )
    def test_composed_matches_ld_mva_and_algorithm2(self, demand, servers, think):
        net = ClosedNetwork(
            [Station("cpu", demand, servers=servers), Station("disk", 0.03)],
            think_time=think,
        )
        n = 40
        sc = Scenario(net, n)
        composed = compose(sc, [aggregate(sc, ["cpu"], cache=None)])
        got = solve(composed, cache=None)

        # exact reference: the ld-MVA recursion on the flat model
        exact = exact_load_dependent_mva(net, n)
        np.testing.assert_allclose(got.throughput, exact.throughput, atol=1e-10)

        # Algorithm 2's correction-factor AMVA (Seidmann + Schweitzer)
        # errs by up to ~10% around the knee; the composed exact result
        # must stay inside that approximation band.
        approx = solve(sc, method="approx-multiserver-mva", cache=None)
        rel = np.abs(got.throughput - approx.throughput) / approx.throughput
        assert rel.max() < 0.12

    def test_chained_two_level_aggregation(self, tiered_net):
        # FES of a subsystem that already contains an FES (rate tables
        # flow into the subsystem solve, which rides ld-MVA).
        sc = Scenario(tiered_net, 30)
        disks = aggregate(sc, ["srv.disk1", "srv.disk2"], name="disks", cache=None)
        lvl1 = compose(sc, [disks])
        srv = aggregate(lvl1, ["srv.cpu", "disks"], name="srv", cache=None)
        assert srv.solver == "exact-load-dependent-mva"
        lvl2 = compose(lvl1, [srv])
        flat = solve(sc, method="ld-mva", cache=None)
        got = solve(lvl2, cache=None)
        np.testing.assert_allclose(got.throughput, flat.throughput, atol=1e-8)


class TestCompose:
    def test_three_level_hierarchy_matches_flat(self, tiered_net):
        """The acceptance gate: disk -> server -> gateway composition <= 1e-8."""
        n = 60
        sc = Scenario(tiered_net, n)
        flat = solve(sc, method="ld-mva", cache=None)

        disks = aggregate(sc, ["srv.disk1", "srv.disk2"], name="srv.disks", cache=None)
        lvl1 = compose(sc, [disks])
        srv = aggregate(lvl1, ["srv.cpu", "srv.disks"], name="srv", cache=None)
        lvl2 = compose(lvl1, [srv])
        db = aggregate(lvl2, ["db.cpu", "db.disk"], name="db", cache=None)
        lvl3 = compose(lvl2, [db])

        assert lvl3.station_names == ("gw.cpu", "srv", "db", "lan")
        for scenario in (lvl1, lvl2, lvl3):
            result = solve(scenario, cache=None)
            np.testing.assert_allclose(
                result.throughput, flat.throughput, atol=1e-8, rtol=0
            )
            np.testing.assert_allclose(
                result.response_time, flat.response_time, atol=1e-8, rtol=0
            )

    def test_composed_scenario_routes_to_ld_mva(self, tiered_net):
        sc = Scenario(tiered_net, 20)
        reduced = compose(sc, [aggregate(sc, ["srv.disk1"], cache=None)])
        assert reduced.has_rate_tables
        assert auto_method(reduced) == "ld-mva"

    def test_fes_station_replaces_members_in_place(self, tiered_net):
        sc = Scenario(tiered_net, 20)
        fes = aggregate(sc, ["srv.cpu", "db.cpu"], name="cpus", cache=None)
        reduced = compose(sc, [fes])
        # inserted at the first member's slot; other member dropped
        assert reduced.station_names == (
            "gw.cpu", "cpus", "srv.disk1", "srv.disk2", "db.disk", "lan",
        )

    def test_deeper_tables_truncate(self, tiered_net):
        deep = aggregate(
            Scenario(tiered_net, 10), ["srv.disk1"], max_population=40, cache=None
        )
        reduced = compose(Scenario(tiered_net, 25), [deep])
        assert len(reduced.rate_tables[deep.name]) == 25

    def test_shallow_tables_rejected(self, tiered_net):
        shallow = aggregate(Scenario(tiered_net, 10), ["srv.disk1"], cache=None)
        with pytest.raises(SolverInputError, match="re-aggregate"):
            compose(Scenario(tiered_net, 50), [shallow])

    def test_overlapping_members_rejected(self, tiered_net):
        sc = Scenario(tiered_net, 10)
        a = aggregate(sc, ["srv.cpu", "srv.disk1"], name="a", cache=None)
        b = aggregate(sc, ["srv.disk1", "srv.disk2"], name="b", cache=None)
        with pytest.raises(SolverInputError, match="claimed by both"):
            compose(sc, [a, b])

    def test_name_collision_rejected(self, tiered_net):
        sc = Scenario(tiered_net, 10)
        fes = aggregate(sc, ["srv.disk1"], name="db.disk", cache=None)
        with pytest.raises(SolverInputError, match="collide"):
            compose(sc, [fes])

    def test_empty_aggregates_rejected(self, tiered_net):
        with pytest.raises(SolverInputError, match="at least one"):
            compose(Scenario(tiered_net, 10), [])

    def test_single_fes_accepted_bare(self, tiered_net):
        sc = Scenario(tiered_net, 10)
        fes = aggregate(sc, ["srv.disk1"], cache=None)
        assert isinstance(compose(sc, fes), Scenario)

    def test_fingerprint_distinguishes_tables(self, tiered_net):
        sc = Scenario(tiered_net, 12)
        r1 = compose(sc, [aggregate(sc, ["srv.disk1"], cache=None)])
        r2 = compose(sc, [aggregate(sc, ["srv.disk2"], cache=None)])
        assert r1.fingerprint() != r2.fingerprint()


class TestCapabilityRouting:
    def test_fixed_demand_solver_rejects_rate_tables_with_hint(self, tiered_net):
        sc = Scenario(tiered_net, 10)
        reduced = compose(sc, [aggregate(sc, ["srv.disk1"], cache=None)])
        with pytest.raises(SolverCapabilityError, match="'ld-mva'"):
            solve(reduced, method="exact-mva", cache=None)

    def test_fes_station_round_trips_as_station(self, tiered_net):
        sc = Scenario(tiered_net, 10)
        fes = aggregate(sc, ["srv.disk1", "srv.disk2"], cache=None)
        st_ = fes.as_station()
        assert st_.kind == "queue" and st_.servers == 1
        assert st_.demand == pytest.approx(1.0 / fes.rates[0])


class TestCacheIntegration:
    def test_reaggregation_hits_memory_tier(self, tiered_net):
        cache = SolverCache()
        sc = Scenario(tiered_net, 25)
        f1 = aggregate(sc, ["srv.disk1", "srv.disk2"], cache=cache)
        before = cache.stats().hits
        f2 = aggregate(sc, ["srv.disk1", "srv.disk2"], cache=cache)
        assert f1 == f2
        assert cache.stats().hits == before + 1

    def test_restart_hits_persistent_tier(self, tiered_net, tmp_path):
        from repro.solvers import PersistentCache

        path = str(tmp_path / "fes.sqlite")
        sc = Scenario(tiered_net, 20)
        f1 = aggregate(
            sc, ["srv.disk1", "srv.disk2"], cache=SolverCache(persistent=path)
        )
        fresh = SolverCache(persistent=PersistentCache(path))
        f2 = aggregate(sc, ["srv.disk1", "srv.disk2"], cache=fresh)
        assert f1 == f2
        stats = fresh.stats()
        assert stats.persistent_hits >= 1
        assert stats.persistent.hits >= 1

    def test_growing_population_extends_trajectory(self, tiered_net):
        # an ld-mva-backed aggregation is a trajectory: deeper sampling
        # resumes from the stored marginals, bit-identical on the prefix
        cache = SolverCache()
        sc = Scenario(tiered_net, 30)
        shallow = aggregate(sc, ["srv.disk1", "srv.disk2"], method="ld-mva", cache=cache)
        deep = aggregate(
            sc,
            ["srv.disk1", "srv.disk2"],
            method="ld-mva",
            max_population=60,
            cache=cache,
        )
        assert cache.stats().trajectory_extends >= 1
        assert deep.rates[:30] == shallow.rates

    def test_composed_solve_extends_trajectory(self, tiered_net):
        cache = SolverCache()
        deep = aggregate(
            Scenario(tiered_net, 80), ["srv.disk1", "srv.disk2"], cache=cache
        )
        r40 = solve(compose(Scenario(tiered_net, 40), [deep]), cache=cache)
        before = cache.stats().trajectory_extends
        r80 = solve(compose(Scenario(tiered_net, 80), [deep]), cache=cache)
        assert cache.stats().trajectory_extends == before + 1
        np.testing.assert_array_equal(r80.throughput[:40], r40.throughput)


class TestFESStationDataclass:
    def test_is_frozen_and_hashable(self):
        fes = FESStation("f", ("a",), (1.0, 2.0), "exact-mva", "ab" * 32)
        with pytest.raises(AttributeError):
            fes.name = "other"
        assert hash(fes) == hash(
            FESStation("f", ("a",), (1.0, 2.0), "exact-mva", "ab" * 32)
        )
