"""Utilization monitors (vmstat/iostat/netstat, eq. 7)."""

import math

import pytest

from repro.loadtest import LoadTest, NetworkMonitorConfig, monitor_utilizations
from repro.loadtest.runner import extract_demands


class TestNetworkMonitorConfig:
    def test_packets_for_demand(self):
        cfg = NetworkMonitorConfig(bandwidth_bps=1e9, packet_bytes=1500)
        # 0.003 s at 1 GB/s = 3e6 bytes = 2000 packets
        assert cfg.packets_for_demand(0.003) == 2000

    def test_packets_round_up(self):
        cfg = NetworkMonitorConfig(bandwidth_bps=1e9, packet_bytes=1500)
        assert cfg.packets_for_demand(1e-9) == 1

    def test_eq7_recovers_xd(self):
        # packets * size / (t * bw) must reconstruct X * D.
        cfg = NetworkMonitorConfig()
        demand, x, t = 0.003, 50.0, 100.0
        pages = x * t
        packets = pages * cfg.packets_for_demand(demand)
        util = cfg.utilization_percent(packets, t)
        assert util == pytest.approx(x * demand * 100, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkMonitorConfig(bandwidth_bps=0)
        with pytest.raises(ValueError):
            NetworkMonitorConfig(packet_bytes=0)
        with pytest.raises(ValueError):
            NetworkMonitorConfig().packets_for_demand(-1.0)
        with pytest.raises(ValueError):
            NetworkMonitorConfig().utilization_percent(10, 0.0)


class TestMonitorUtilizations:
    @pytest.fixture
    def run(self, mini_app):
        return LoadTest(mini_app).fire(virtual_users=10, seed=1, duration=80.0)

    def test_reports_all_tiers(self, run, mini_app):
        demands = extract_demands(run, mini_app)
        by_tier = monitor_utilizations(run.simulation, demands)
        assert set(by_tier) == {"load", "app", "db"}

    def test_cpu_disk_match_simulation(self, run, mini_app):
        demands = extract_demands(run, mini_app)
        by_tier = monitor_utilizations(run.simulation, demands)
        assert by_tier["db"].disk == pytest.approx(
            run.simulation.utilization_of("db.disk") * 100, rel=1e-9
        )
        assert by_tier["app"].cpu == pytest.approx(
            run.simulation.utilization_of("app.cpu") * 100, rel=1e-9
        )

    def test_network_via_eq7_close_to_xd(self, run, mini_app):
        demands = extract_demands(run, mini_app)
        by_tier = monitor_utilizations(run.simulation, demands)
        expected = run.tps * demands["db.net_tx"] * 100
        # ceil quantization makes eq. 7 a slight overestimate
        assert by_tier["db"].net_tx == pytest.approx(expected, rel=0.02)
        assert by_tier["db"].net_tx >= expected * 0.999

    def test_as_tuple_order(self, run, mini_app):
        demands = extract_demands(run, mini_app)
        util = monitor_utilizations(run.simulation, demands)["db"]
        assert util.as_tuple() == (util.cpu, util.disk, util.net_tx, util.net_rx)
