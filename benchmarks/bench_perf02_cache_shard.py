"""PERF-02 — warm-cache what-if sweeps and process-sharded scenario grids.

Times the two PR-4 execution-path layers on capacity-planning-sized
workloads and records the results in ``BENCH_perf02.json`` at the repo
root:

* **Warm-cache what-if sweep** — the same what-if variant set evaluated
  twice against one :class:`~repro.solvers.SolverCache`; the second
  pass must be all cache hits and produce identical trajectories.
* **Process-sharded grid** — a 10⁴-scenario MVASD demand-scaling grid
  solved by the in-process ``batched`` backend vs the
  ``process-sharded`` backend; trajectories must agree to ≤1e-10.

Assertions gate on *parity* (cached results identical, sharded ≤1e-10
from batched, hits recorded), never on wall-clock — CI containers are
often single-core, where the fork-join fan-out cannot win.  Timings are
recorded in the JSON for the EXPERIMENTS.md walkthrough.

``REPRO_BENCH_QUICK=1`` shrinks the grid for the CI smoke job.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.network import ClosedNetwork, Station
from repro.analysis.whatif import Scenario as WhatIfScenario
from repro.analysis.whatif import evaluate_scenarios
from repro.solvers import Scenario, SolverCache, solve_stack

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf02.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Sharded-grid shape: S scenarios x N population levels, K=3 stations.
GRID_SCENARIOS = 512 if QUICK else 10_000
MAX_POPULATION = 100 if QUICK else 150

#: What-if sweep shape.
WHATIF_VARIANTS = 12 if QUICK else 24
WHATIF_POPULATION = 120 if QUICK else 300


def _three_tier() -> ClosedNetwork:
    return ClosedNetwork(
        [
            Station("web", demand=0.04, servers=4),
            Station("app", demand=0.06, servers=2),
            Station("db", demand=0.05),
        ],
        think_time=1.0,
    )


def test_perf02_warm_cache_and_sharded_grid(emit):
    network = _three_tier()

    # -- leg 1: warm-cache what-if sweep --------------------------------------
    fns = {
        "web": lambda n: 0.04 + 0.00005 * n,
        "app": lambda n: 0.06 + 0.00002 * n,
        "db": lambda n: 0.05,
    }
    variants = [
        WhatIfScenario(f"scale-{i}", demand_scale={"db": 0.6 + 0.05 * i})
        for i in range(WHATIF_VARIANTS)
    ]
    cache = SolverCache(maxsize=4 * WHATIF_VARIANTS)

    t0 = time.perf_counter()
    cold = evaluate_scenarios(
        network, fns, variants, WHATIF_POPULATION, workers=1, cache=cache
    )
    t_cold = time.perf_counter() - t0
    stats_cold = cache.stats()

    t0 = time.perf_counter()
    warm = evaluate_scenarios(
        network, fns, variants, WHATIF_POPULATION, workers=1, cache=cache
    )
    t_warm = time.perf_counter() - t0
    stats_warm = cache.stats()

    warm_hits = stats_warm.hits - stats_cold.hits
    warm_speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    max_warm_diff = max(
        float(np.abs(warm[name].result.throughput - cold[name].result.throughput).max())
        for name in cold
    )

    # -- leg 2: process-sharded scenario grid ---------------------------------
    scales = np.linspace(0.7, 1.3, GRID_SCENARIOS)
    base = Scenario(network, MAX_POPULATION).resolved_demand_matrix()
    scenarios = [
        Scenario(network, MAX_POPULATION, demand_matrix=base * s) for s in scales
    ]

    t0 = time.perf_counter()
    batched = solve_stack(scenarios, method="mvasd", backend="batched", cache=None)
    t_batched = time.perf_counter() - t0

    workers = os.cpu_count() or 1
    t0 = time.perf_counter()
    sharded = solve_stack(
        scenarios,
        method="mvasd",
        backend="process-sharded",
        workers=workers,
        cache=None,
    )
    t_sharded = time.perf_counter() - t0

    max_shard_diff = float(np.abs(sharded.throughput - batched.throughput).max())
    shard_speedup = t_batched / t_sharded if t_sharded > 0 else float("inf")

    cores = os.cpu_count() or 1
    payload = {
        "bench": "perf02_cache_shard",
        "quick_mode": QUICK,
        "host_cpu_cores": cores,
        "warm_cache_whatif": {
            "variants": WHATIF_VARIANTS,
            "max_population": WHATIF_POPULATION,
            "cold_seconds": round(t_cold, 4),
            "warm_seconds": round(t_warm, 4),
            "warm_speedup": round(warm_speedup, 1),
            "warm_hits": warm_hits,
            "max_abs_throughput_diff": max_warm_diff,
        },
        "sharded_grid": {
            "scenarios": GRID_SCENARIOS,
            "max_population": MAX_POPULATION,
            "stations": len(network),
            "workers": workers,
            "batched_seconds": round(t_batched, 4),
            "sharded_seconds": round(t_sharded, 4),
            "sharded_vs_batched_speedup": round(shard_speedup, 2),
            "max_abs_throughput_diff": max_shard_diff,
            "backend_labels": [batched.backend, sharded.backend],
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "\n".join(
            [
                "PERF-02 — cache + sharded execution",
                f"Warm-cache what-if: {WHATIF_VARIANTS + 1} scenarios x "
                f"N={WHATIF_POPULATION}",
                f"  cold: {t_cold:.3f}s   warm: {t_warm:.4f}s   "
                f"speedup: {warm_speedup:.0f}x   hits: {warm_hits}   "
                f"max |dX|: {max_warm_diff:.2e}",
                f"Sharded grid: {GRID_SCENARIOS} scenarios x N={MAX_POPULATION}, "
                f"K={len(network)} (host cores: {cores})",
                f"  batched: {t_batched:.3f}s   sharded({workers}w): {t_sharded:.3f}s   "
                f"ratio: {shard_speedup:.2f}x   max |dX|: {max_shard_diff:.2e}",
            ]
        )
    )

    # Parity gates only — timing is recorded, never asserted.
    assert warm_hits >= WHATIF_VARIANTS + 1, "warm pass was not served from the cache"
    assert max_warm_diff == 0.0, "cached results diverged from the cold solve"
    assert max_shard_diff <= 1e-10, "sharded backend diverged from the batched kernel"
    assert batched.backend == "batched"
    assert sharded.backend == "process-sharded"
