"""Fig. 15 — Chebyshev vs random sampling of the DB disk demand.

Splines through randomly-placed test points show extra undulations
compared to Chebyshev-placed ones at the same budget; Chebyshev node
placement exists precisely to suppress them.
"""

import numpy as np

from repro.analysis import format_series
from repro.interpolate import ServiceDemandModel
from repro.loadtest import run_sweep
from repro.workflow import design_points


def _curve_quality(model, dense_model):
    probe = np.linspace(1, 300, 240)
    vals = model(probe)
    ref = dense_model(probe)
    rmse = float(np.sqrt(((vals - ref) ** 2).mean()) / ref.mean() * 100)
    slope_signs = np.sign(np.diff(vals))
    slope_signs = slope_signs[slope_signs != 0]
    reversals = int((np.diff(slope_signs) != 0).sum())
    return rmse, reversals


def test_fig15_chebyshev_vs_random_sampling(benchmark, jps_app, jps_sweep, emit):
    n_points = 7
    station = "db.disk"
    dense = jps_sweep.demand_table().models[station]

    def run_designs():
        out = {}
        for strategy, seed in (("chebyshev", 0), ("random", 3), ("random", 9)):
            pts = design_points(n_points, 1, 300, strategy=strategy, seed=seed)
            sweep = run_sweep(
                jps_app, levels=[int(p) for p in pts], duration=120.0, seed=70 + seed
            )
            label = strategy if strategy == "chebyshev" else f"random#{seed}"
            out[label] = (pts, sweep.demand_table().models[station])
        return out

    results = benchmark.pedantic(run_designs, rounds=1, iterations=1)

    grid = np.linspace(1, 300, 13).round()
    series = {"dense ref": np.round(dense(grid) * 1000, 3)}
    quality = {}
    for label, (pts, model) in results.items():
        series[label] = np.round(model(grid) * 1000, 3)
        quality[label] = _curve_quality(model, dense)

    text = format_series(
        "Users",
        grid.astype(int),
        series,
        title=f"Fig. 15 — db.disk demand splines: Chebyshev vs random ({n_points} tests each, ms/page)",
    )
    text += "\n\nDesigns: " + "; ".join(
        f"{label}: {list(map(int, pts))}" for label, (pts, _) in results.items()
    )
    text += "\nNormalized RMSE vs dense / slope reversals: " + ", ".join(
        f"{label}: {q[0]:.1f}% / {q[1]}" for label, q in quality.items()
    )
    emit(text)

    cheb_rmse, cheb_rev = quality["chebyshev"]
    random_qualities = [q for label, q in quality.items() if label != "chebyshev"]
    # Chebyshev design strictly more faithful than the worst random design
    # and never wigglier than any of them (measurement noise plus the real
    # saturation bump allow a couple of genuine slope reversals).
    assert cheb_rmse < max(q[0] for q in random_qualities)
    assert cheb_rev <= min(q[1] for q in random_qualities)
