"""Fig. 5 — service demands for the VINS database server.

Demands extracted with the service-demand law (D = U_total / X) from
monitored utilization at every campaign level.  The paper's observation:
demands *decrease* with concurrency (caching, batching, branch
prediction).
"""

import numpy as np

from repro.analysis import format_series


def test_fig05_vins_db_demand_curves(benchmark, vins_sweep, emit):
    samples = benchmark.pedantic(
        vins_sweep.demand_samples, rounds=1, iterations=1
    )

    stations = ("db.cpu", "db.disk", "db.net_tx", "db.net_rx")
    text = format_series(
        "Users",
        vins_sweep.levels,
        {name: np.round(samples[name] * 1000, 3) for name in stations},
        title="Fig. 5 — VINS database server service demands (ms/page) vs concurrency",
    )
    truth = vins_sweep.application.true_demands_at(1421)
    text += (
        "\n\nGround-truth profile at N=1421 (ms): "
        + ", ".join(f"{n}: {truth[n]*1000:.3f}" for n in stations)
    )
    emit(text)

    # Shape: decreasing demand with load for every DB resource (compare
    # the low-concurrency average against the tail to absorb noise).
    for name in stations:
        d = samples[name]
        assert d[-2:].mean() < d[:2].mean(), name
    # And the extraction tracks the ground-truth profile at the top level.
    np.testing.assert_allclose(samples["db.disk"][-1], truth["db.disk"], rtol=0.1)
