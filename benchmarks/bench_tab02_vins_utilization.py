"""Table 2 — Utilization % observed during load testing of VINS.

The 10-row x 12-column grid (load/app/db servers x CPU|Disk|Net-Tx|
Net-Rx) from the simulated campaign.  The paper's underlined anchors:
the load-injector disk and the database disk approach saturation while
the database CPU stays near ~35 %.
"""

from repro.loadtest import utilization_table_text


def test_tab02_vins_utilization_grid(benchmark, vins_sweep, emit):
    text = benchmark.pedantic(
        lambda: utilization_table_text(vins_sweep), rounds=1, iterations=1
    )
    text += (
        "\n\nAnchors (paper Table 2): db Disk -> saturation (bottleneck), "
        "load Disk hot, db CPU ~35-40%."
    )
    emit(text)

    rows = vins_sweep.utilization_table()
    _, top = rows[-1]
    # db disk saturated, db CPU in the paper's band, load disk hot.
    assert top["db"].disk > 90.0
    assert 25.0 < top["db"].cpu < 50.0
    assert top["load"].disk > 75.0
    # utilization grows with concurrency for the bottleneck
    first = rows[0][1]["db"].disk
    assert first < top["db"].disk
