"""Fig. 7 — MVASD vs MVA i on JPetStore.

The CPU-bound case.  MVASD follows the measured curve including the
throughput deviation between 140 and 168 users (a saturation-onset
demand bump); the fixed-demand MVA i curves vary in quality with i and
none pick up the dip.
"""

import numpy as np

from repro.analysis import format_series, mean_percent_deviation
from repro.core import exact_multiserver_mva, mvasd
from repro.loadtest.runner import extract_demands

MVA_LEVELS = (28, 70, 140, 210)


def test_fig07_mvasd_jpetstore(benchmark, jps_sweep, emit):
    app = jps_sweep.application
    table = jps_sweep.demand_table()

    result = benchmark.pedantic(
        lambda: mvasd(app.network, 280, demand_functions=table.functions()),
        rounds=1,
        iterations=1,
    )

    by_level = dict(zip(jps_sweep.levels.tolist(), jps_sweep.runs))
    lv = jps_sweep.levels.astype(float)
    x_series = {
        "Measured": np.round(jps_sweep.throughput, 2),
        "MVASD": np.round(result.interpolate_throughput(lv), 2),
    }
    devs = {
        "MVASD": mean_percent_deviation(
            result.interpolate_throughput(lv), jps_sweep.throughput
        )
    }
    for lvl in MVA_LEVELS:
        demands = extract_demands(by_level[lvl], app)
        res = exact_multiserver_mva(
            app.network,
            280,
            demands=[demands[n] for n in app.network.station_names],
            station_detail=False,
        )
        x_series[f"MVA {lvl}"] = np.round(res.interpolate_throughput(lv), 2)
        devs[f"MVA {lvl}"] = mean_percent_deviation(
            res.interpolate_throughput(lv), jps_sweep.throughput
        )

    text = format_series(
        "Users", jps_sweep.levels, x_series,
        title="Fig. 7 — JPetStore throughput (pages/s): measured vs MVASD vs MVA i",
    )
    text += "\n\nThroughput deviation: " + ", ".join(
        f"{k}: {v:.2f}%" for k, v in devs.items()
    )

    # The 140-168 deviation: measured growth flattens; MVASD mirrors it.
    meas = jps_sweep.throughput
    i140 = list(jps_sweep.levels).index(140)
    meas_slope = (meas[i140 + 1] - meas[i140]) / (168 - 140)
    pred = result.interpolate_throughput(lv)
    pred_slope = (pred[i140 + 1] - pred[i140]) / (168 - 140)
    text += (
        f"\n140->168 users slope (pages/s per user): measured {meas_slope:.3f}, "
        f"MVASD {pred_slope:.3f} (flattening reproduced)."
    )
    emit(text)

    assert devs["MVASD"] == min(devs.values())
    # the pre-dip slope is much steeper than the in-dip slope, and MVASD sees it
    pre_slope = (meas[i140] - meas[i140 - 1]) / (140 - 70)
    assert meas_slope < pre_slope
    assert pred_slope < pre_slope
