"""Extension 6 — multi-class workload mixes (lifting the single-class
assumption).

The paper's "future work": real traffic mixes workflows with different
resource appetites.  The Bard-Schweitzer multi-class AMVA with varying
demands (multi-class MVASD) sweeps a 3:1 browse/buy JPetStore-style mix
and is validated against the multi-class simulator at the top of the
sweep.
"""

import numpy as np

from repro.analysis import format_series
from repro.core import multiclass_mvasd
from repro.simulation import ClassSpec, simulate_multiclass

STATIONS = ("app.cpu", "db.cpu", "db.disk")
SERVERS = {"app.cpu": 1, "db.cpu": 1, "db.disk": 1}

# Per-server demands: buyers hit the DB disk (order writes), browsers are
# CPU-light cache-friendly traffic.  Both warm up with load.
DEMANDS = {
    "browse": {
        "app.cpu": lambda n: 0.010 + 0.003 * np.exp(-n / 40),
        "db.cpu": lambda n: 0.008 + 0.002 * np.exp(-n / 40),
        "db.disk": 0.004,
    },
    "buy": {
        "app.cpu": lambda n: 0.014 + 0.004 * np.exp(-n / 40),
        "db.cpu": lambda n: 0.012 + 0.003 * np.exp(-n / 40),
        "db.disk": lambda n: 0.030 + 0.008 * np.exp(-n / 40),
    },
}
MIX = {"browse": 3, "buy": 1}
THINK = {"browse": 1.0, "buy": 2.0}
TOP = 130


def test_ext06_multiclass_workload_mix(benchmark, emit):
    traj = benchmark.pedantic(
        lambda: multiclass_mvasd(
            STATIONS, DEMANDS, mix=MIX, max_total_population=TOP, think_times=THINK
        ),
        rounds=1,
        iterations=1,
    )

    steps = [4, 16, 32, 64, 96, 112, 130]
    idx = [s - 1 for s in steps]
    text = format_series(
        "Total users",
        steps,
        {
            "X browse": np.round(traj.throughput[idx, 0], 2),
            "X buy": np.round(traj.throughput[idx, 1], 2),
            "R+Z browse": np.round(traj.cycle_time("browse")[idx], 3),
            "R+Z buy": np.round(traj.cycle_time("buy")[idx], 3),
            "db.disk util": np.round(traj.utilizations[idx, 2], 2),
        },
        title="Extension 6 — 3:1 browse/buy mix, multi-class MVASD sweep",
    )

    # Validate the top of the sweep against the multi-class simulator.
    top_mix = traj.populations[-1]
    sim = simulate_multiclass(
        STATIONS,
        SERVERS,
        classes=[
            ClassSpec(
                "browse",
                int(top_mix[0]),
                THINK["browse"],
                {k: (v(TOP) if callable(v) else v) for k, v in DEMANDS["browse"].items()},
            ),
            ClassSpec(
                "buy",
                int(top_mix[1]),
                THINK["buy"],
                {k: (v(TOP) if callable(v) else v) for k, v in DEMANDS["buy"].items()},
            ),
        ],
        duration=400.0,
        warmup=40.0,
        seed=21,
    )
    err = np.abs(traj.throughput[-1] - sim.throughput) / sim.throughput * 100
    text += (
        f"\n\nValidation at {TOP} users vs multi-class DES: "
        f"browse {traj.throughput[-1, 0]:.2f} vs {sim.throughput[0]:.2f} "
        f"({err[0]:.1f}%), buy {traj.throughput[-1, 1]:.2f} vs "
        f"{sim.throughput[1]:.2f} ({err[1]:.1f}%)."
    )
    emit(text)

    # buyers (disk-heavy) absorb more absolute queueing delay as the
    # shared disk saturates (they carry the largest per-visit demand)
    rise_buy = traj.response_time[-1, 1] - traj.response_time[0, 1]
    rise_browse = traj.response_time[-1, 0] - traj.response_time[0, 0]
    assert rise_buy > rise_browse
    assert err.max() < 10.0
