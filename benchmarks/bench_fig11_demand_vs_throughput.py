"""Fig. 11 — interpolation of service demands against *throughput*
(JPetStore database).

Section 7's alternative axis: demand curves fitted over measured
throughput instead of concurrency, useful for open systems.  The
prediction still works but deviates more than the concurrency-axis
model — the paper reports 6.68 % (X) / 6.9 % (R+Z) vs ~2 % for the
concurrency axis.
"""

import numpy as np

from repro.analysis import format_series, mean_percent_deviation
from repro.core import mvasd


def test_fig11_demand_vs_throughput_axis(benchmark, jps_sweep, emit):
    app = jps_sweep.application
    x_table = jps_sweep.demand_table(axis="throughput")
    n_table = jps_sweep.demand_table(axis="concurrency")

    result_x = benchmark.pedantic(
        lambda: mvasd(
            app.network,
            280,
            demand_functions=x_table.functions(),
            demand_axis="throughput",
        ),
        rounds=1,
        iterations=1,
    )
    result_n = mvasd(app.network, 280, demand_functions=n_table.functions())

    # Demand-vs-throughput curves for the DB stations.
    xs = jps_sweep.throughput
    text = format_series(
        "X (pages/s)",
        np.round(xs, 1),
        {
            "db.cpu D(X) ms": np.round(
                x_table.models["db.cpu"](xs) * 1000, 3
            ),
            "db.disk D(X) ms": np.round(
                x_table.models["db.disk"](xs) * 1000, 3
            ),
        },
        title="Fig. 11a — JPetStore DB demands interpolated against throughput",
    )

    lv = jps_sweep.levels.astype(float)
    devs = {
        "throughput-axis": {
            "X": mean_percent_deviation(
                result_x.interpolate_throughput(lv), jps_sweep.throughput
            ),
            "R+Z": mean_percent_deviation(
                result_x.interpolate_cycle_time(lv), jps_sweep.cycle_time
            ),
        },
        "concurrency-axis": {
            "X": mean_percent_deviation(
                result_n.interpolate_throughput(lv), jps_sweep.throughput
            ),
            "R+Z": mean_percent_deviation(
                result_n.interpolate_cycle_time(lv), jps_sweep.cycle_time
            ),
        },
    }
    text += "\n\nFig. 11b — prediction deviation by interpolation axis:"
    for axis, d in devs.items():
        text += f"\n  {axis}: X {d['X']:.2f}%, R+Z {d['R+Z']:.2f}%"
    text += (
        "\n(Paper: throughput-axis 6.68% / 6.9%; the concurrency axis is "
        "the more accurate input, same ordering here.)"
    )
    emit(text)

    # demand still decreases along the throughput axis
    dcurve = x_table.models["db.cpu"](np.linspace(xs[0], xs[-1], 50))
    assert dcurve[-1] < dcurve[0]
    # both axes predict, the concurrency axis at least as well
    assert devs["throughput-axis"]["X"] < 12.0
    assert devs["concurrency-axis"]["X"] <= devs["throughput-axis"]["X"] + 1.0
