"""Shared fixtures for the paper-reproduction benches.

Each bench regenerates one table or figure of the paper and

* prints the same rows/series the paper reports (compare side by side),
* writes the text to ``benchmarks/results/<bench>.txt``,
* times a representative computation via pytest-benchmark.

The measured sweeps (the paper's load-test campaigns) are expensive, so
they are built once per session here.  Durations are sized for
steady-state stability, not realism — the paper ran 30-60-minute tests;
the simulated testbed converges in a few hundred simulated seconds.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.apps import jpetstore_application, vins_application
from repro.loadtest import run_sweep

RESULTS_DIR = Path(__file__).parent / "results"

#: Concurrency levels of the paper's campaigns (Tables 2-3 grids).
VINS_LEVELS = (1, 51, 102, 203, 406, 609, 812, 1015, 1218, 1421)
JPS_LEVELS = (1, 14, 28, 70, 140, 168, 210, 280)

#: Simulated seconds per load test.
DURATION = 200.0


@pytest.fixture(scope="session")
def vins_app():
    return vins_application()


@pytest.fixture(scope="session")
def jps_app():
    return jpetstore_application()


@pytest.fixture(scope="session")
def vins_sweep(vins_app):
    return run_sweep(vins_app, levels=VINS_LEVELS, duration=DURATION, seed=101)


@pytest.fixture(scope="session")
def jps_sweep(jps_app):
    return run_sweep(jps_app, levels=JPS_LEVELS, duration=DURATION, seed=202)


@pytest.fixture
def emit(request):
    """Print a bench's paper-style output and persist it under results/."""

    def _emit(text: str, name: str | None = None) -> None:
        stem = name or request.node.fspath.purebasename
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{stem}.txt").write_text(text + "\n")
        print()
        print(text)

    return _emit
