"""Ablation 3 — testbed validation: DES vs exact MVA on constant demands.

The substitution argument of DESIGN.md rests on the simulated testbed
being a faithful product-form system: with *constant* demands, measured
DES output must agree with exact MVA within simulation noise.  This is
the calibration experiment separating solver error from testbed error.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ClosedNetwork, Station, exact_multiserver_mva
from repro.simulation import simulate_closed_network

CASES = {
    "single-server pair": ClosedNetwork(
        [Station("cpu", 0.05), Station("disk", 0.08)], think_time=1.0
    ),
    "4-core bottleneck": ClosedNetwork(
        [Station("cpu", 0.4, servers=4), Station("disk", 0.05)], think_time=1.0
    ),
    "16-core + disk": ClosedNetwork(
        [Station("cpu", 0.15, servers=16), Station("disk", 0.01)], think_time=1.0
    ),
}
POPULATIONS = (5, 20, 60, 120)


def test_abl03_des_matches_exact_mva(benchmark, emit):
    def run_all():
        rows = []
        for name, net in CASES.items():
            mva = exact_multiserver_mva(net, max(POPULATIONS))
            for n in POPULATIONS:
                sims = [
                    simulate_closed_network(
                        net, n, duration=250.0, warmup=25.0, seed=s
                    ).throughput
                    for s in (1, 2, 3)
                ]
                measured = float(np.mean(sims))
                predicted = float(mva.throughput[n - 1])
                rows.append(
                    (
                        name,
                        n,
                        measured,
                        predicted,
                        abs(measured - predicted) / predicted * 100,
                    )
                )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = format_table(
        ("Network", "N", "DES X", "Exact MVA X", "gap (%)"),
        rows,
        title="Ablation 3 — simulated testbed vs exact theory (constant demands)",
    )
    gaps = [r[-1] for r in rows]
    text += f"\n\nMean gap {np.mean(gaps):.2f}%, worst {max(gaps):.2f}% — the testbed is product-form faithful."
    emit(text)

    assert np.mean(gaps) < 1.5
    assert max(gaps) < 4.0
