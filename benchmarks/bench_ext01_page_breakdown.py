"""Extension 1 — per-page response-time breakdown (Grinder-style report).

The paper's load tests exercise 7-page (VINS) and 14-page (JPetStore)
workflows and The Grinder reports per-page statistics; the MVA models
only ever see the per-page average.  The page-level simulator produces
the full breakdown while preserving the aggregate the models predict.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import mvasd
from repro.simulation import simulate_workflow


def test_ext01_per_page_breakdown(benchmark, jps_app, jps_sweep, emit):
    users = 140
    result = benchmark.pedantic(
        lambda: simulate_workflow(
            jps_app.network,
            users,
            jps_app.workflow_weights(),
            duration=250.0,
            warmup=25.0,
            seed=12,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        (p.name, p.weight, p.completions, p.mean_response_time * 1000, p.p95_response_time * 1000)
        for p in result.pages
    ]
    text = format_table(
        ("Page", "weight", "views", "mean RT (ms)", "p95 RT (ms)"),
        rows,
        title=f"Extension 1 — JPetStore per-page breakdown at {users} users",
    )

    table = jps_sweep.demand_table()
    model = mvasd(jps_app.network, users, demand_functions=table.functions())
    text += (
        f"\n\nAggregate: {result.aggregate.throughput:.2f} pages/s measured vs "
        f"{model.throughput[-1]:.2f} predicted (MVASD sees only the page average); "
        f"one full workflow pass takes {result.workflow_time:.1f}s."
    )
    emit(text)

    # heaviest page slowest, lightest fastest
    heavy = result.page("checkout").mean_response_time
    light = result.page("signout").mean_response_time
    assert heavy > light
    # aggregate preserved vs MVASD within a few percent
    assert abs(result.aggregate.throughput - model.throughput[-1]) / model.throughput[-1] < 0.08
