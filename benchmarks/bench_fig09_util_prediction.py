"""Fig. 9 — database-server utilization predicted by MVASD vs measured
(JPetStore).

Because MVASD carries the interpolated demand at every level, its
predicted utilizations ``X^n SS_k^n / C_k`` follow the monitored curves
through saturation.
"""

import numpy as np

from repro.analysis import format_series, mean_percent_deviation
from repro.core import mvasd


def test_fig09_db_utilization_prediction(benchmark, jps_sweep, emit):
    app = jps_sweep.application
    table = jps_sweep.demand_table()

    result = benchmark.pedantic(
        lambda: mvasd(app.network, 280, demand_functions=table.functions()),
        rounds=1,
        iterations=1,
    )

    lv = jps_sweep.levels.astype(float)
    series = {}
    devs = {}
    for station in ("db.cpu", "db.disk"):
        measured = jps_sweep.utilization_of(station) * 100
        predicted = (
            np.interp(lv, result.populations, result.utilization_of(station)) * 100
        )
        series[f"{station} meas"] = np.round(measured, 1)
        series[f"{station} MVASD"] = np.round(predicted, 1)
        devs[station] = mean_percent_deviation(predicted, measured)

    text = format_series(
        "Users", jps_sweep.levels, series,
        title="Fig. 9 — JPetStore DB utilization %: measured vs MVASD-predicted",
    )
    text += "\n\nUtilization deviation: " + ", ".join(
        f"{k}: {v:.2f}%" for k, v in devs.items()
    )
    emit(text)

    assert devs["db.cpu"] < 8.0
    assert devs["db.disk"] < 8.0
    # both saturate in the prediction as in the measurement
    assert series["db.cpu MVASD"][-1] > 90.0
    assert series["db.disk MVASD"][-1] > 90.0
