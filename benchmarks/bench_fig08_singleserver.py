"""Fig. 8 — MVASD vs MVASD: Single-Server on JPetStore.

Normalizing a 16-core CPU into one server of demand D/16 drops the
multi-server correction and misses queueing dynamics exactly where the
CPU is the bottleneck: the single-server variant's predictions
deteriorate visibly, the paper's argument for the multi-server model.
"""

import numpy as np

from repro.analysis import format_series, mean_percent_deviation
from repro.core import mvasd


def test_fig08_single_server_normalization(benchmark, jps_sweep, emit):
    app = jps_sweep.application
    table = jps_sweep.demand_table()
    fns = table.functions()

    def solve_both():
        return (
            mvasd(app.network, 280, demand_functions=fns),
            mvasd(app.network, 280, demand_functions=fns, single_server=True),
        )

    multi, single = benchmark.pedantic(solve_both, rounds=1, iterations=1)

    lv = jps_sweep.levels.astype(float)
    text = format_series(
        "Users",
        jps_sweep.levels,
        {
            "Measured X": np.round(jps_sweep.throughput, 2),
            "MVASD X": np.round(multi.interpolate_throughput(lv), 2),
            "SingleSrv X": np.round(single.interpolate_throughput(lv), 2),
            "Measured R+Z": np.round(jps_sweep.cycle_time, 3),
            "MVASD R+Z": np.round(multi.interpolate_cycle_time(lv), 3),
            "SingleSrv R+Z": np.round(single.interpolate_cycle_time(lv), 3),
        },
        title="Fig. 8 — JPetStore: multi-server MVASD vs normalized single-server MVASD",
    )
    dev = {
        "MVASD": mean_percent_deviation(
            multi.interpolate_throughput(lv), jps_sweep.throughput
        ),
        "MVASD: Single-Server": mean_percent_deviation(
            single.interpolate_throughput(lv), jps_sweep.throughput
        ),
    }
    dev_ct = {
        "MVASD": mean_percent_deviation(
            multi.interpolate_cycle_time(lv), jps_sweep.cycle_time
        ),
        "MVASD: Single-Server": mean_percent_deviation(
            single.interpolate_cycle_time(lv), jps_sweep.cycle_time
        ),
    }
    text += "\n\nThroughput deviation: " + ", ".join(
        f"{k}: {v:.2f}%" for k, v in dev.items()
    )
    text += "\nCycle-time deviation: " + ", ".join(
        f"{k}: {v:.2f}%" for k, v in dev_ct.items()
    )
    emit(text)

    # Paper shape: single-server normalization clearly worse on both
    # metrics for the CPU-bound application.
    assert dev["MVASD"] < dev["MVASD: Single-Server"]
    assert dev_ct["MVASD"] < dev_ct["MVASD: Single-Server"]
    assert dev["MVASD: Single-Server"] > 2 * dev["MVASD"]
