"""Extension 2 — model-free curve extrapolation (Perfext, ref. [4]) vs MVASD.

All approaches get the same 5 early measurements (up to 140 users,
i.e. saturation onset) and predict the remaining levels.  Curve fitting
interpolates beautifully but must guess the plateau; Gunther's
Universal Scalability Law bakes in a parametric plateau (contention σ +
coherency κ); MVASD carries the bottleneck structure and lands it.
"""

import numpy as np

from repro.analysis import ThroughputExtrapolator, format_series, mean_percent_deviation
from repro.core import mvasd
from repro.interpolate import UniversalScalabilityLaw


def test_ext02_extrapolation_vs_mvasd(benchmark, jps_sweep, emit):
    app = jps_sweep.application
    train = jps_sweep.subset([1, 14, 28, 70, 140])
    test_levels = [168, 210, 280]
    test = jps_sweep.subset(test_levels)

    def build_all():
        fit = ThroughputExtrapolator(train.levels.astype(float), train.throughput)
        usl = UniversalScalabilityLaw.fit(train.levels.astype(float), train.throughput)
        table = train.demand_table()
        model = mvasd(app.network, 280, demand_functions=table.functions())
        return fit, usl, model

    fit, usl, model = benchmark.pedantic(build_all, rounds=1, iterations=1)

    lv = np.asarray(test_levels, float)
    pred_fit = fit.predict_throughput(lv)
    pred_usl = usl.throughput(lv)
    pred_model = model.interpolate_throughput(lv)
    text = format_series(
        "Users",
        test_levels,
        {
            "Measured": np.round(test.throughput, 2),
            "Curve fit": np.round(pred_fit, 2),
            "USL": np.round(pred_usl, 2),
            "MVASD": np.round(pred_model, 2),
        },
        title="Extension 2 — extrapolating past the training range (trained on N <= 140)",
    )
    dev_fit = mean_percent_deviation(pred_fit, test.throughput)
    dev_usl = mean_percent_deviation(pred_usl, test.throughput)
    dev_model = mean_percent_deviation(pred_model, test.throughput)
    text += (
        f"\n\nExtrapolation deviation — curve fit: {dev_fit:.2f}%, "
        f"USL: {dev_usl:.2f}%, MVASD: {dev_model:.2f}% "
        f"(fitted plateau {fit.x_max:.1f} vs true ~{test.throughput[-1]:.1f} pages/s; "
        f"USL σ={usl.sigma:.4f}, κ={usl.kappa:.2e}, "
        f"peak N*={usl.peak_concurrency:.0f})."
    )
    emit(text)

    assert dev_model < 8.0
    # the 2-parameter law stays finite and positive out of range (unlike a
    # free spline) but, fitted this far below saturation, it misses the
    # plateau — the structural argument for carrying the queueing model
    assert np.all(np.isfinite(pred_usl)) and np.all(pred_usl > 0)
    assert dev_usl < 40.0
    # the structural point: the queueing model extrapolates no worse than
    # (and typically much better than) the model-free fit
    assert dev_model <= dev_fit + 1.0
