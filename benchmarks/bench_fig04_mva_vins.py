"""Fig. 4 — throughput and response time from multi-server MVA (Alg. 2)
on VINS, for demands sampled at different concurrency levels.

The ``MVA i`` curves (demands frozen at concurrency i = 1, 203, 406)
fan out around the measured data: no single fixed-demand model tracks a
system whose demands fall with load — the paper's motivating failure.
"""

import numpy as np

from repro.analysis import format_series, mean_percent_deviation
from repro.core import exact_multiserver_mva
from repro.loadtest.runner import extract_demands

MVA_LEVELS = (1, 203, 406)


def test_fig04_mva_i_fan_out(benchmark, vins_sweep, emit):
    app = vins_sweep.application
    by_level = dict(zip(vins_sweep.levels.tolist(), vins_sweep.runs))

    def solve_all():
        out = {}
        for lvl in MVA_LEVELS:
            demands = extract_demands(by_level[lvl], app)
            vector = [demands[n] for n in app.network.station_names]
            out[lvl] = exact_multiserver_mva(
                app.network, 1500, demands=vector, station_detail=False
            )
        return out

    results = benchmark.pedantic(solve_all, rounds=1, iterations=1)

    lv = vins_sweep.levels.astype(float)
    x_series = {"Measured": np.round(vins_sweep.throughput, 2)}
    ct_series = {"Measured": np.round(vins_sweep.cycle_time, 3)}
    for lvl, res in results.items():
        x_series[f"MVA {lvl}"] = np.round(res.interpolate_throughput(lv), 2)
        ct_series[f"MVA {lvl}"] = np.round(res.interpolate_cycle_time(lv), 3)

    text = format_series(
        "Users", vins_sweep.levels, x_series,
        title="Fig. 4a — VINS throughput (pages/s): measured vs MVA i",
    )
    text += "\n\n" + format_series(
        "Users", vins_sweep.levels, ct_series,
        title="Fig. 4b — VINS cycle time R+Z (s): measured vs MVA i",
    )
    devs = {
        lvl: mean_percent_deviation(
            res.interpolate_throughput(lv), vins_sweep.throughput
        )
        for lvl, res in results.items()
    }
    text += "\n\nThroughput deviation: " + ", ".join(
        f"MVA {l}: {d:.2f}%" for l, d in devs.items()
    )
    emit(text)

    # Shape: every fixed-demand model shows a visible deviation, and
    # demands collected at higher concurrency predict better.
    assert min(devs.values()) > 1.0
    assert devs[406] < devs[1]
