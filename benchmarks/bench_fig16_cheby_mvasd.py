"""Fig. 16 — MVASD predictions from Chebyshev-designed load tests
(JPetStore).

Even 3 Chebyshev-placed load tests produce spline demand curves whose
MVASD predictions track the full measured sweep — the paper's argument
for node-based test design when the test budget is tight.
"""

import numpy as np

from repro.analysis import format_series, mean_percent_deviation
from repro.workflow import predict_performance


def test_fig16_mvasd_from_chebyshev_designs(benchmark, jps_app, jps_sweep, emit):
    def run_all():
        return {
            n: predict_performance(
                jps_app,
                n_design_points=n,
                max_population=280,
                concurrency_range=(1, 300),
                duration=120.0,
                seed=50 + n,
            )
            for n in (3, 5, 7)
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lv = jps_sweep.levels.astype(float)
    x_series = {"Measured": np.round(jps_sweep.throughput, 2)}
    devs = {}
    for n, rep in reports.items():
        x_series[f"Cheb-{n}"] = np.round(
            rep.prediction.interpolate_throughput(lv), 2
        )
        val = rep.validate(jps_sweep)
        devs[n] = (val["throughput"], val["cycle_time"])

    text = format_series(
        "Users", jps_sweep.levels, x_series,
        title="Fig. 16 — JPetStore throughput: measured vs MVASD from Chebyshev designs",
    )
    text += "\n\nDeviation (X / R+Z): " + ", ".join(
        f"Cheb-{n}: {x:.2f}% / {ct:.2f}%" for n, (x, ct) in devs.items()
    )
    emit(text)

    # Paper claim: even 3 Chebyshev nodes give reliable MVASD output.
    assert devs[3][0] < 10.0
    assert devs[5][0] < 8.0
    assert devs[7][0] < 8.0
