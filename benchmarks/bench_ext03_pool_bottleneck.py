"""Extension 3 — software bottlenecks the paper scopes out.

The paper assumes connection pools are "tuned prior to performance
analysis".  This bench quantifies that assumption: with a database
connection pool of shrinking capacity, measured throughput detaches from
the (hardware-only) MVASD prediction while the hardware monitors show
idle resources — the signature that would tell a practitioner the model
scope was violated.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import mvasd
from repro.simulation import ConnectionPool, simulate_closed_network

CAPACITIES = (None, 64, 16, 8, 4)
USERS = 140


def test_ext03_connection_pool_bottleneck(benchmark, jps_app, jps_sweep, emit):
    db_stations = ("db.cpu", "db.disk", "db.net_tx", "db.net_rx")

    def run_all():
        out = {}
        for cap in CAPACITIES:
            pools = (
                [ConnectionPool("db-conns", cap, db_stations)] if cap else []
            )
            out[cap] = simulate_closed_network(
                jps_app.network, USERS, duration=200.0, warmup=20.0, seed=5, pools=pools
            )
        return out

    sims = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = jps_sweep.demand_table()
    predicted = mvasd(jps_app.network, USERS, demand_functions=table.functions())
    pred_x = float(predicted.throughput[-1])

    rows = []
    for cap, sim in sims.items():
        wait = sim.pool("db-conns").mean_wait * 1000 if cap else 0.0
        rows.append(
            (
                "unlimited" if cap is None else cap,
                sim.throughput,
                sim.response_time,
                sim.utilization_of("db.cpu") * 100,
                wait,
                (pred_x - sim.throughput) / sim.throughput * 100,
            )
        )
    text = format_table(
        (
            "DB pool size",
            "X (pages/s)",
            "R (s)",
            "db.cpu util %",
            "pool wait (ms)",
            "MVASD overprediction %",
        ),
        rows,
        title=f"Extension 3 — untuned DB connection pool at {USERS} users (MVASD predicts {pred_x:.1f}/s)",
    )
    text += (
        "\n\nHardware-only models stay accurate while the pool is generous "
        "and overpredict sharply once it binds — with the CPU visibly idle."
    )
    emit(text)

    unlimited = sims[None].throughput
    tight = sims[4].throughput
    assert tight < unlimited * 0.75
    assert sims[4].utilization_of("db.cpu") < sims[None].utilization_of("db.cpu") * 0.75
    assert abs(pred_x - unlimited) / unlimited < 0.1
    assert (pred_x - tight) / tight > 0.3
