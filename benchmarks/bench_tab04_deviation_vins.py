"""Table 4 — mean deviation in modeling the VINS application.

Eq. 15 deviations of MVASD and the MVA i variants against the measured
VINS campaign.  Paper bands: MVASD < 3 % (throughput) and < 9 % (cycle
time); every MVA i clearly worse.
"""

from repro.analysis import compare_models

MVA_LEVELS = (1, 203, 406)


def test_tab04_vins_deviation_table(benchmark, vins_sweep, emit):
    cmp_ = benchmark.pedantic(
        lambda: compare_models(
            vins_sweep, max_population=1500, mva_levels=MVA_LEVELS
        ),
        rounds=1,
        iterations=1,
    )
    text = cmp_.table()
    text += (
        "\n\nPaper Table 4 bands: MVASD 2.83% (X), 8.61% (R+Z); "
        "MVA 1/203/406 between 5.5% and 12.5%."
    )
    emit(text)

    dev = cmp_.deviations
    assert dev["MVASD"]["throughput"] < 3.0
    assert dev["MVASD"]["cycle_time"] < 9.0
    for lvl in MVA_LEVELS:
        assert dev[f"MVA {lvl}"]["throughput"] > dev["MVASD"]["throughput"]
        assert dev[f"MVA {lvl}"]["cycle_time"] > dev["MVASD"]["cycle_time"]
    assert cmp_.best("throughput") == "MVASD"
    assert cmp_.best("cycle_time") == "MVASD"
