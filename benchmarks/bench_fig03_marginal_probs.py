"""Fig. 3 — marginal probability of a CPU core being busy vs concurrency.

Runs Algorithm 2's marginal-probability recursion on a 4-core CPU
station and tabulates ``p_k(j)`` (probability of j jobs in service,
j = 0..3) as concurrency grows.  At saturation the station is never
empty: the low-occupancy probabilities vanish and the correction factor
``F_k`` with them.
"""

import numpy as np

from repro.analysis import format_series
from repro.core import ClosedNetwork, Station, exact_multiserver_mva


def test_fig03_marginal_probabilities(benchmark, emit):
    net = ClosedNetwork(
        [Station("cpu", 0.4, servers=4), Station("disk", 0.02)], think_time=1.0
    )

    result = benchmark.pedantic(
        lambda: exact_multiserver_mva(net, 120, method="recursion"),
        rounds=1,
        iterations=1,
    )

    probs = result.marginal_probabilities["cpu"]
    levels = [1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 120]
    idx = [l - 1 for l in levels]
    series = {
        f"p(j={j})": np.round(probs[idx, j], 4) for j in range(4)
    }
    weights = 4 - 1 - np.arange(3)  # (C-1-j) for j = 0..C-2
    series["F_k"] = np.round([(weights * probs[i, :3]).sum() for i in idx], 4)
    series["busy util"] = np.round(result.utilizations[idx, 0], 3)
    text = format_series(
        "N",
        levels,
        series,
        title="Fig. 3 — 4-core CPU marginal queue-size probabilities p_k(j) vs concurrency",
    )
    text += (
        "\n\np(0) -> 0 as the CPU saturates; the multi-server correction "
        "F_k = sum (C-1-j) p(j) decays with it, recovering R = (D/C)(1+Q)."
    )
    emit(text)

    # Shape: p(0) starts near 1 and collapses under saturation.
    assert probs[0, 0] > 0.5
    assert probs[-1, 0] < 0.02
    # probabilities valid throughout
    assert probs.min() >= 0 and probs.sum(axis=1).max() <= 1 + 1e-9
