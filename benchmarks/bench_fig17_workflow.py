"""Fig. 17 — the three-step prediction workflow, end to end.

Step 1: Chebyshev design of the test points.  Step 2: load tests +
service-demand extraction.  Step 3: spline interpolation + MVASD.
Run against VINS and validated against the independent dense campaign.
"""

import numpy as np

from repro.analysis import format_table
from repro.workflow import predict_performance


def test_fig17_end_to_end_workflow(benchmark, vins_app, vins_sweep, emit):
    report = benchmark.pedantic(
        lambda: predict_performance(
            vins_app,
            n_design_points=5,
            max_population=1500,
            concurrency_range=(1, 1500),
            duration=150.0,
            seed=99,
        ),
        rounds=1,
        iterations=1,
    )

    val = report.validate(vins_sweep, stations_for_utilization=["db.disk"])
    rows = [
        ("Step 1: design points", ", ".join(map(str, report.design.tolist()))),
        (
            "Step 2: measured demands @ top design point",
            f"db.disk {report.demand_table.models['db.disk'](float(report.design[-1]))*1000:.2f} ms",
        ),
        ("Step 3: prediction", report.prediction.summary()),
        ("Validation: throughput deviation", f"{val['throughput']:.2f}%"),
        ("Validation: cycle-time deviation", f"{val['cycle_time']:.2f}%"),
        ("Validation: db.disk utilization deviation", f"{val['utilization:db.disk']:.2f}%"),
    ]
    text = format_table(
        ("Workflow stage", "Outcome"),
        rows,
        title="Fig. 17 — design -> measure -> predict workflow on VINS",
    )
    emit(text)

    assert val["throughput"] < 6.0
    assert val["cycle_time"] < 8.0
