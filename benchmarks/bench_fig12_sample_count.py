"""Fig. 12 — splines generated for the DB server from 3 / 5 / 7 samples
(JPetStore).

The wider the spread of collected demand samples, the better the
interpolation: with only {1, 14, 28} the spline misses the whole
decaying tail, with 5 and 7 samples it converges onto the dense curve.
"""

import numpy as np

from repro.analysis import format_series
from repro.interpolate import ServiceDemandModel

SUBSETS = {
    3: (1, 14, 28),
    5: (1, 14, 28, 70, 140),
    7: (1, 14, 28, 70, 140, 168, 210),
}


def test_fig12_sample_count_effect(benchmark, jps_sweep, emit):
    samples = jps_sweep.demand_samples()["db.cpu"]
    by_level = dict(zip(jps_sweep.levels.tolist(), samples))

    def fit_all():
        models = {}
        for count, levels in SUBSETS.items():
            models[count] = ServiceDemandModel(
                np.array(levels, float), [by_level[l] for l in levels]
            )
        return models

    models = benchmark.pedantic(fit_all, rounds=1, iterations=1)

    dense = ServiceDemandModel(jps_sweep.levels.astype(float), samples)
    grid = np.array([1, 14, 28, 50, 70, 100, 140, 168, 210, 250, 280], float)
    series = {"dense (8 pts)": np.round(dense(grid) * 1000, 3)}
    errors = {}
    for count, model in models.items():
        series[f"{count} samples"] = np.round(model(grid) * 1000, 3)
        probe = np.linspace(1, 280, 100)
        errors[count] = float(
            np.abs(model(probe) - dense(probe)).max() / dense(probe).mean() * 100
        )
    text = format_series(
        "Users",
        grid.astype(int),
        series,
        title="Fig. 12 — JPetStore db.cpu demand splines from 3/5/7 samples (ms/page)",
    )
    text += "\n\nMax deviation from the dense curve: " + ", ".join(
        f"{c} samples: {e:.1f}%" for c, e in errors.items()
    )
    emit(text)

    # More (wider-spread) samples -> better interpolation.
    assert errors[7] < errors[5] < errors[3]
