"""Fig. 1 — The Grinder test output with respect to length of tests.

Reproduces the transient view of one load test: ramped worker-process
start plus thread sleep jitter produce an initial throughput climb that
settles into steady state — the reason the paper runs long tests and we
cut a warm-up window.
"""

import numpy as np

from repro.analysis import format_series
from repro.loadtest import GrinderProperties, LoadTest, steady_state_window


def test_fig01_transient_behaviour(benchmark, vins_app, emit):
    props = GrinderProperties(
        processes=10,
        threads=20,
        duration_ms=240_000,
        initial_sleep_time_ms=4_000,
        process_increment=2,
        process_increment_interval_ms=8_000,
    )
    test = LoadTest(vins_app, properties=props)

    run = benchmark.pedantic(
        lambda: test.fire(seed=7), rounds=1, iterations=1
    )

    w = run.windowed(10.0)
    text = format_series(
        "t (s)",
        [f"{t:.0f}" for t in w["time"]],
        {
            "TPS (pages/s)": np.round(w["throughput"], 2),
            "Mean RT (s)": np.round(w["response_time"], 3),
        },
        title=(
            "Fig. 1 — Grinder output over test time "
            f"(VINS, {run.virtual_users} users, ramped start)"
        ),
    )
    settle = steady_state_window(
        w["time"], np.nan_to_num(w["throughput"]), window=20.0
    )
    text += (
        f"\n\nSteady state reached by ~{settle:.0f}s; "
        f"warm-up cut applied at {run.warmup:.0f}s.\n"
        f"Steady-state TPS {run.tps:.2f} pages/s, RT {run.mean_response_time:.3f}s."
    )
    emit(text)

    # Shape assertions: early windows below the steady mean; late stable.
    tps = w["throughput"]
    steady = tps[int(len(tps) * 0.5):].mean()
    assert tps[0] < steady * 0.9
    late = tps[int(len(tps) * 0.6):]
    assert np.all(np.abs(late - steady) < 0.25 * steady)
