"""PERF-04 — ``repro serve`` QPS: cold vs persistent-warm vs trajectory.

Runs the capacity-planning service end to end (real subprocess, real
TCP) and records per-solve rates in ``BENCH_perf04.json`` at the repo
root:

* **cold** — a fresh server with an empty sqlite store answers one
  deep ``solve`` per scenario; every request runs the full recursion.
* **trajectory** — ``whatif`` sweeps over smaller populations against
  the same server; every population is a prefix slice of the deep
  trajectory already in memory, so no recursion runs at all.
* **persistent-warm** — the server is shut down and *restarted* on the
  same sqlite path, then asked the same deep solves again; every
  answer is a persistent-tier hit that survived the restart.

Assertions gate on *provenance and parity* (every response labelled
with the expected cache tier; served snapshots exactly equal to direct
in-process solves — floats round-trip through JSON), never on
wall-clock.  The measured speedups are recorded in the JSON for the
EXPERIMENTS.md walkthrough.

``REPRO_BENCH_QUICK=1`` shrinks the sweep for the CI smoke job.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.serve import ServeClient, decode_scenario
from repro.solvers import solve

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_perf04.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Deep-solve population — sized so a cold solve costs real work.
MAX_POPULATION = 1_500 if QUICK else 5_000
#: Distinct scenarios (demand scales) in the sweep.
SCENARIOS = 6 if QUICK else 12
#: What-if populations per scenario, all below MAX_POPULATION.
WHATIF_POINTS = 5 if QUICK else 10


def _payload(scale: float) -> dict:
    return {
        "stations": [
            {"name": "web", "demand": 0.04 * scale, "servers": 4},
            {"name": "app", "demand": 0.06 * scale, "servers": 2},
            {"name": "db", "demand": 0.05 * scale},
        ],
        "think_time": 1.0,
        "max_population": MAX_POPULATION,
    }


def _start_server(cache_path: str):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-path",
            cache_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            return proc, int(line.rsplit(":", 1)[1])
        if not line and proc.poll() is not None:
            raise RuntimeError(f"serve died before binding (rc={proc.returncode})")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("serve never announced its port")


def _stop_server(proc, port):
    try:
        with ServeClient(port=port, timeout=30.0) as client:
            client.shutdown()
    except Exception:
        proc.terminate()
    proc.wait(timeout=120.0)


def test_perf04_serve_qps(emit, tmp_path):
    db = str(tmp_path / "serve-cache.sqlite")
    scales = [0.7 + 0.6 * i / (SCENARIOS - 1) for i in range(SCENARIOS)]
    payloads = [_payload(s) for s in scales]
    whatif_pops = [
        max(1, MAX_POPULATION * (i + 1) // (WHATIF_POINTS + 1))
        for i in range(WHATIF_POINTS)
    ]

    # -- leg 1: cold deep solves ---------------------------------------------
    proc, port = _start_server(db)
    pid_first = None
    try:
        with ServeClient(port=port, timeout=120.0) as client:
            pid_first = client.ping()["pid"]
            t0 = time.perf_counter()
            cold = [
                client.request(
                    {
                        "op": "solve",
                        "scenario": p,
                        "method": "mvasd",
                        "at": MAX_POPULATION,
                    }
                )
                for p in payloads
            ]
            t_cold = time.perf_counter() - t0

            # -- leg 2: what-if sweeps served from the trajectory ------------
            t0 = time.perf_counter()
            sweeps = [
                client.request(
                    {
                        "op": "whatif",
                        "scenario": p,
                        "populations": whatif_pops,
                        "method": "mvasd",
                    }
                )
                for p in payloads
            ]
            t_traj = time.perf_counter() - t0
    finally:
        _stop_server(proc, port)
    restart_clean = proc.returncode == 0

    # -- leg 3: restart; the sqlite tier answers the same deep solves --------
    proc, port = _start_server(db)
    try:
        with ServeClient(port=port, timeout=120.0) as client:
            pid_second = client.ping()["pid"]
            t0 = time.perf_counter()
            warm = [
                client.request(
                    {
                        "op": "solve",
                        "scenario": p,
                        "method": "mvasd",
                        "at": MAX_POPULATION,
                    }
                )
                for p in payloads
            ]
            t_warm = time.perf_counter() - t0
    finally:
        _stop_server(proc, port)

    # -- parity: served snapshots vs direct in-process solves ----------------
    n_parity = 3  # spot-check a few scenarios end to end
    max_diff = 0.0
    for payload, cold_env, warm_env, sweep_env in zip(
        payloads[:n_parity], cold, warm, sweeps
    ):
        direct = solve(decode_scenario(payload), method="mvasd", cache=None)
        for envelope in (cold_env, warm_env):
            snap = envelope["result"]
            ref = direct.at(MAX_POPULATION)
            for field in ("throughput", "response_time", "cycle_time"):
                max_diff = max(max_diff, abs(snap[field] - ref[field]))
        for snap in sweep_env["result"]["snapshots"]:
            ref = direct.at(snap["population"])
            max_diff = max(max_diff, abs(snap["throughput"] - ref["throughput"]))

    # -- rates ----------------------------------------------------------------
    n_traj_solves = SCENARIOS * WHATIF_POINTS
    qps_cold = SCENARIOS / t_cold if t_cold > 0 else float("inf")
    qps_traj = n_traj_solves / t_traj if t_traj > 0 else float("inf")
    qps_warm = SCENARIOS / t_warm if t_warm > 0 else float("inf")

    payload = {
        "bench": "perf04_serve",
        "quick_mode": QUICK,
        "host_cpu_cores": os.cpu_count() or 1,
        "max_population": MAX_POPULATION,
        "scenarios": SCENARIOS,
        "whatif_populations": whatif_pops,
        "cold": {
            "solves": SCENARIOS,
            "seconds": round(t_cold, 4),
            "qps": round(qps_cold, 1),
        },
        "trajectory": {
            "solves": n_traj_solves,
            "seconds": round(t_traj, 4),
            "qps": round(qps_traj, 1),
            "speedup_vs_cold": round(qps_traj / qps_cold, 1),
        },
        "persistent_warm": {
            "solves": SCENARIOS,
            "seconds": round(t_warm, 4),
            "qps": round(qps_warm, 1),
            "speedup_vs_cold": round(qps_warm / qps_cold, 1),
            "survived_restart": pid_second != pid_first and restart_clean,
        },
        "max_abs_diff_vs_direct": max_diff,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "\n".join(
            [
                "PERF-04 — repro serve: cold vs persistent-warm vs trajectory",
                f"{SCENARIOS} scenarios x N={MAX_POPULATION}, "
                f"what-if points: {whatif_pops}",
                f"  cold:        {SCENARIOS:4d} solves in {t_cold:.3f}s "
                f"= {qps_cold:8.1f} solves/s",
                f"  trajectory:  {n_traj_solves:4d} solves in {t_traj:.3f}s "
                f"= {qps_traj:8.1f} solves/s ({qps_traj / qps_cold:.0f}x cold)",
                f"  warm (disk): {SCENARIOS:4d} solves in {t_warm:.3f}s "
                f"= {qps_warm:8.1f} solves/s ({qps_warm / qps_cold:.0f}x cold), "
                f"after restart",
                f"  max |served - direct|: {max_diff:.2e}",
            ]
        )
    )

    # Provenance + parity gates only — timing is recorded, never asserted.
    assert all(env["ok"] and env["provenance"] == "cold" for env in cold)
    for env in sweeps:
        assert env["ok"]
        assert env["provenance"]["trajectory-prefix"] == WHATIF_POINTS
        assert env["provenance"]["cold"] == 0
    assert all(env["ok"] and env["provenance"] == "persistent" for env in warm)
    assert pid_second != pid_first, "restart did not produce a new process"
    assert restart_clean, "first server did not exit cleanly"
    assert max_diff == 0.0, "served snapshots diverged from direct solves"
