"""HIER-01 — hierarchical composition: cached FES tables vs flat re-solves.

The ISSUE-8 acceptance sweep: a gateway fronting a six-station backend
(app tier with two disks, database tier with one), swept over 10⁴
gateway demand scales.  The backend never changes, so the hierarchical
path aggregates it **once** into a flow-equivalent station — every
further ``aggregate()`` call is a :class:`~repro.solvers.SolverCache`
hit — and each sweep point solves a tiny 2-station composed model on
the batched ld-MVA kernel.  The flat path re-solves the full
seven-dimensional product-form network (log-domain convolution, the
exact multiserver reference) from scratch each time.

Because the flat leg is exactly the cost composition amortizes away, it
is timed on a systematic subsample and projected to the full sweep
(``flat_sample`` in the JSON records how many were actually solved —
nothing is silently dropped).  Results land in ``BENCH_hier01.json``:

* ``speedup_vs_flat`` — projected flat sweep seconds / hierarchical
  sweep seconds (the ≥10x acceptance number),
* ``fes_cache`` — aggregation reuse counters (1 cold solve, S-1 hits),
* ``max_abs_throughput_diff`` — composed-vs-flat parity on the sampled
  points, gated at ≤1e-8.

Assertions gate on parity and cache reuse, and on the speedup itself:
the gap is algorithmic (table lookup + O(N²K) on K=2 vs repeated
convolution on K=7), not a parallelism artifact, so it holds on
single-core CI runners too.  ``REPRO_BENCH_QUICK=1`` shrinks the sweep
for the CI smoke job.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.network import ClosedNetwork, Station
from repro.solvers import Scenario, SolverCache, aggregate, compose, solve, solve_stack

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_hier01.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Sweep shape: S gateway demand scales x N population levels.
SWEEP_SCENARIOS = 512 if QUICK else 10_000
MAX_POPULATION = 60 if QUICK else 100

#: Flat re-solves actually executed (systematic subsample, projected).
FLAT_SAMPLE = 24 if QUICK else 64

#: Stations folded into the flow-equivalent backend.
BACKEND = ("srv.cpu", "srv.disk1", "srv.disk2", "db.cpu", "db.disk")


def _gateway_network(gw_demand: float) -> ClosedNetwork:
    return ClosedNetwork(
        [
            Station("gw.cpu", demand=gw_demand, servers=2),
            Station("srv.cpu", demand=0.020, servers=4),
            Station("srv.disk1", demand=0.030),
            Station("srv.disk2", demand=0.025),
            Station("db.cpu", demand=0.018, servers=2),
            Station("db.disk", demand=0.035),
        ],
        think_time=1.0,
    )


def test_hier01_cached_fes_sweep(emit):
    scales = np.linspace(0.6, 1.4, SWEEP_SCENARIOS)
    flat_scenarios = [
        Scenario(_gateway_network(0.012 * s), MAX_POPULATION) for s in scales
    ]

    # -- hierarchical leg: aggregate (cached) + compose + batched ld-MVA ------
    cache = SolverCache(maxsize=64)
    t0 = time.perf_counter()
    composed = []
    for sc in flat_scenarios:
        fes = aggregate(sc, BACKEND, name="backend", cache=cache)
        composed.append(compose(sc, [fes]))
    t_aggregate = time.perf_counter() - t0
    stats = cache.stats()

    t0 = time.perf_counter()
    stack = solve_stack(composed, cache=None)
    t_solve = time.perf_counter() - t0
    t_hier = t_aggregate + t_solve

    # -- flat leg: exact convolution re-solves on a systematic subsample ------
    sample_idx = np.unique(
        np.linspace(0, SWEEP_SCENARIOS - 1, FLAT_SAMPLE).round().astype(int)
    )
    t0 = time.perf_counter()
    flat_results = [
        solve(flat_scenarios[i], cache=None, station_detail=False)
        for i in sample_idx
    ]
    t_flat_sample = time.perf_counter() - t0
    t_flat_projected = t_flat_sample / len(sample_idx) * SWEEP_SCENARIOS
    speedup = t_flat_projected / t_hier if t_hier > 0 else float("inf")

    max_diff = max(
        float(np.abs(stack.throughput[i] - flat.throughput).max())
        for i, flat in zip(sample_idx, flat_results)
    )

    payload = {
        "bench": "hier01_compose",
        "quick_mode": QUICK,
        "host_cpu_cores": os.cpu_count() or 1,
        "sweep": {
            "scenarios": SWEEP_SCENARIOS,
            "max_population": MAX_POPULATION,
            "flat_stations": len(BACKEND) + 1,
            "composed_stations": 2,
            "backend_members": list(BACKEND),
        },
        "hierarchical": {
            "aggregate_seconds": round(t_aggregate, 4),
            "solve_seconds": round(t_solve, 4),
            "total_seconds": round(t_hier, 4),
            "stack_solver": stack.solver,
        },
        "flat": {
            "flat_sample": int(len(sample_idx)),
            "sample_seconds": round(t_flat_sample, 4),
            "per_scenario_seconds": round(t_flat_sample / len(sample_idx), 5),
            "projected_sweep_seconds": round(t_flat_projected, 2),
            "flat_solver": flat_results[0].solver,
        },
        "fes_cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "reused": stats.hits >= SWEEP_SCENARIOS - 1,
        },
        "speedup_vs_flat": round(speedup, 1),
        "max_abs_throughput_diff": max_diff,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "\n".join(
            [
                "HIER-01 — hierarchical composition sweep",
                f"Sweep: {SWEEP_SCENARIOS} gateway scales x N={MAX_POPULATION}, "
                f"flat K={len(BACKEND) + 1} -> composed K=2",
                f"  hierarchical: aggregate {t_aggregate:.3f}s "
                f"(cache hits {stats.hits}/{SWEEP_SCENARIOS}) + "
                f"solve {t_solve:.3f}s [{stack.solver}]",
                f"  flat: {len(sample_idx)} sampled re-solves "
                f"[{flat_results[0].solver}] at "
                f"{t_flat_sample / len(sample_idx):.4f}s each -> "
                f"projected {t_flat_projected:.1f}s for the sweep",
                f"  speedup: {speedup:.0f}x   max |dX|: {max_diff:.2e}",
            ]
        )
    )

    # Parity and reuse gates, plus the acceptance speedup (algorithmic, so it
    # is stable across hosts; timing details are recorded, not asserted).
    assert max_diff <= 1e-8, "composed sweep diverged from the flat exact solves"
    assert stats.hits >= SWEEP_SCENARIOS - 1, "FES table was re-solved, not reused"
    assert stats.misses <= 2, "backend subsystem should be solved once"
    assert speedup >= 10.0, f"cached composition only {speedup:.1f}x vs flat"
