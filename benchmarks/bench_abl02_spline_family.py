"""Ablation 2 — interpolation family for the MVASD demand curves.

DESIGN.md calls out the spline choice as a design decision: cubic
natural (the paper's Scilab interp), not-a-knot, smoothing, piecewise
linear and the constant-mean baseline (what plain MVA effectively
assumes).  All families are fed the same measured samples.
"""

from repro.analysis import format_table, mean_percent_deviation
from repro.core import mvasd

FAMILIES = ("cubic", "not-a-knot", "smoothing", "pchip", "linear", "constant")


def test_abl02_spline_family(benchmark, jps_sweep, emit):
    app = jps_sweep.application
    lv = jps_sweep.levels.astype(float)

    def run_all():
        out = {}
        for kind in FAMILIES:
            table = jps_sweep.demand_table(kind=kind, lam=1e-7)
            out[kind] = mvasd(app.network, 280, demand_functions=table.functions())
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    devs = {}
    for kind, res in results.items():
        dx = mean_percent_deviation(
            res.interpolate_throughput(lv), jps_sweep.throughput
        )
        dct = mean_percent_deviation(
            res.interpolate_cycle_time(lv), jps_sweep.cycle_time
        )
        devs[kind] = dx
        rows.append((kind, dx, dct))
    text = format_table(
        ("Demand interpolation", "X deviation (%)", "R+Z deviation (%)"),
        rows,
        title="Ablation 2 — MVASD accuracy by demand-interpolation family (JPetStore)",
    )
    text += (
        "\n\nAny level-aware interpolation beats the constant-mean demand; "
        "spline families are near-equivalent on smooth decay data."
    )
    emit(text)

    # The paper's structural point: interpolated demands (any family)
    # dominate the constant-demand assumption.
    for kind in ("cubic", "not-a-knot", "smoothing", "pchip", "linear"):
        assert devs[kind] < devs["constant"]
    # Cubic is competitive with everything else.
    best = min(devs.values())
    assert devs["cubic"] <= best + 1.0
