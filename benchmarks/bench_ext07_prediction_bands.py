"""Extension 7 — prediction bands from demand-estimation uncertainty.

Closes the loop on the paper's ref. [16] (interval/histogram MVA) and
refs. [21]-[22] (demand estimation): regress per-window utilization on
throughput from the measured campaign to get demand confidence
intervals, push the intervals through exact interval MVA, and check
that the measured operating points fall inside the resulting band.
"""

import numpy as np

from repro.analysis import format_series
from repro.core.interval_mva import band_from_estimates
from repro.loadtest.inference import regress_demands


def test_ext07_prediction_bands(benchmark, jps_sweep, emit):
    app = jps_sweep.application

    # Observations across campaign levels: (X, per-station U) pairs.
    x_obs = jps_sweep.throughput
    utils = {
        name: jps_sweep.utilization_of(name) for name in app.station_names
    }
    servers = {st.name: st.servers for st in app.network.stations}

    def build_band():
        estimates = regress_demands(x_obs, utils, servers=servers)
        return estimates, band_from_estimates(app.network, estimates, 280)

    estimates, band = benchmark.pedantic(build_band, rounds=1, iterations=1)

    lv = jps_sweep.levels.astype(float)
    idx = jps_sweep.levels - 1
    text = format_series(
        "Users",
        jps_sweep.levels,
        {
            "X low": np.round(band.throughput_low[idx], 2),
            "X measured": np.round(jps_sweep.throughput, 2),
            "X high": np.round(band.throughput_high[idx], 2),
            "R+Z low": np.round(band.cycle_time_low[idx], 3),
            "R+Z measured": np.round(jps_sweep.cycle_time, 3),
            "R+Z high": np.round(band.cycle_time_high[idx], 3),
        },
        title="Extension 7 — JPetStore prediction band from regression CIs",
    )
    key = estimates["db.cpu"]
    text += (
        f"\n\nExample estimate — {key.summary()}"
        f"\nBand width at N=280: {band.throughput_width()[-1] * 100:.1f}% of X_high."
    )
    emit(text)

    # Measured points inside the band at high load.  (The regression
    # assumes ONE constant demand vector, while true demands fall with
    # load — so the low-N corner can sit above the constant-demand band;
    # the saturated region, where capacity questions live, must be in.)
    saturated = jps_sweep.levels >= 70
    meas_x = jps_sweep.throughput[saturated]
    sel = idx[saturated]
    assert np.all(meas_x <= band.throughput_high[sel] * 1.02)
    assert np.all(meas_x >= band.throughput_low[sel] * 0.98)
    # band is informative, not vacuous
    assert band.throughput_width()[-1] < 0.4
