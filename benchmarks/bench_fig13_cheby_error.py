"""Fig. 13 — error rates produced by varying Chebyshev node counts on
exponential functions.

Tabulates the eq. 19 interpolation error bound for f(x) = exp(mu x) on
[-1, 1], for several means mu and node counts, and verifies the paper's
claim that past 5 nodes the error rate is below 0.2 % for all cases.
"""

import numpy as np

from repro.analysis import format_series
from repro.interpolate import chebyshev_nodes_unit, exponential_error_bound

MUS = (0.25, 0.5, 0.75, 1.0)
NODES = range(1, 11)


def test_fig13_chebyshev_error_rates(benchmark, emit):
    bounds = benchmark.pedantic(
        lambda: {
            mu: [exponential_error_bound(n, mu) for n in NODES] for mu in MUS
        },
        rounds=1,
        iterations=1,
    )

    series = {f"mu={mu}": ["%.2e" % b for b in bounds[mu]] for mu in MUS}
    text = format_series(
        "nodes", list(NODES), series,
        title="Fig. 13 — eq. 19 error bound for exp(mu x) vs Chebyshev node count",
    )

    # Also measure the *actual* interpolation error to show the bound holds.
    actual = {}
    for mu in MUS:
        row = []
        for n in NODES:
            nodes = chebyshev_nodes_unit(n)
            coeffs = np.polyfit(nodes, np.exp(mu * nodes), n - 1) if n > 1 else [np.exp(0)]
            xq = np.linspace(-1, 1, 401)
            row.append(float(np.abs(np.polyval(coeffs, xq) - np.exp(mu * xq)).max()))
        actual[mu] = row
    text += "\n\n" + format_series(
        "nodes",
        list(NODES),
        {f"actual mu={mu}": ["%.2e" % v for v in actual[mu]] for mu in MUS},
        title="Measured max interpolation error (always below the bound)",
    )
    emit(text)

    # Paper claim: > 5 nodes -> error < 0.2% for all cases.
    for mu in MUS:
        assert bounds[mu][5] < 0.002  # n = 6
    # The bound really bounds the measured error (up to float rounding of
    # the polyfit evaluation once bounds drop below machine precision).
    for mu in MUS:
        for n, (b, a) in enumerate(zip(bounds[mu], actual[mu]), start=1):
            assert a <= b * (1 + 1e-6) + 1e-12, (mu, n)
    # Monotone decrease with node count.
    for mu in MUS:
        assert all(x > y for x, y in zip(bounds[mu], bounds[mu][1:]))
