"""PERF-05 — the execution fabric: remote workers vs serial, USL-fitted.

Runs the PERF-01 what-if grid (demand scalings of the JPetStore spline
demand curves under MVASD) through three execution paths and records
the results in ``BENCH_perf05.json`` at the repo root:

* **serial** — the in-process per-scenario reference loop.
* **remote fleet** — real ``repro worker`` subprocesses over TCP at 1,
  2 and 4 workers; every run must agree with serial to <= 1e-10.  The
  throughput-vs-workers curve is fitted with Gunther's Universal
  Scalability Law (:class:`~repro.interpolate.UniversalScalabilityLaw`)
  so the artifact carries contention/coherency coefficients (sigma,
  kappa) rather than raw timings alone.
* **kill-and-resume** — a checkpointed remote sweep whose journal is
  torn mid-file and one of two workers SIGKILLed; the resumed sweep on
  the surviving worker must be bit-identical to the uninterrupted run.

A warm leg repeats the sweep against the same fleet and reads each
worker's ``cache_stats`` before/after to report the fleet-wide cache
hit rate.

Parity and resume gates hold always; the >= 2x throughput floor vs
serial (batched kernels on the workers plus fan-out) is asserted only
in full mode — ``REPRO_BENCH_QUICK=1`` shrinks the grid for the CI
smoke job, where timing floors on shared runners are noise.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import RetryPolicy
from repro.interpolate import UniversalScalabilityLaw
from repro.serve import ServeClient
from repro.solvers import Scenario, solve_stack

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_perf05.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

N_SCENARIOS = 16 if QUICK else 64
MAX_POPULATION = 140 if QUICK else 280
WORKER_COUNTS = (1, 2) if QUICK else (1, 2, 4)
ATOL = 1e-10


class _Scaled:
    """Picklable demand-curve scaling (survives process/transport hops)."""

    def __init__(self, fn, factor: float) -> None:
        self.fn = fn
        self.factor = factor

    def __call__(self, level):
        return self.fn(level) * self.factor


def _start_worker():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            return proc, int(line.rsplit(":", 1)[1])
        if not line and proc.poll() is not None:
            raise RuntimeError(f"worker died before binding (rc={proc.returncode})")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("worker never announced its port")


def _stop_fleet(fleet):
    for proc, port in fleet:
        if proc.poll() is not None:
            continue
        try:
            with ServeClient(port=port, timeout=10.0) as client:
                client.shutdown()
        except Exception:
            proc.terminate()
        try:
            proc.wait(timeout=60.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10.0)


def _max_diff(a, b) -> float:
    return max(
        float(np.abs(getattr(a, f) - getattr(b, f)).max())
        for f in ("throughput", "response_time", "queue_lengths", "utilizations")
    )


def test_perf05_execution_fabric(jps_app, jps_sweep, emit, tmp_path):
    table = jps_sweep.demand_table(kind="cubic")
    network = jps_app.network
    scales = np.linspace(0.7, 1.3, N_SCENARIOS)
    stack = [
        Scenario(
            network,
            MAX_POPULATION,
            demand_functions={
                name: _Scaled(table.models[name], s) for name in network.station_names
            },
        )
        for s in scales
    ]

    # -- leg 1: serial reference ---------------------------------------------
    t0 = time.perf_counter()
    serial = solve_stack(stack, method="mvasd", backend="serial", cache=None)
    t_serial = time.perf_counter() - t0

    # -- leg 2: worker fleets at 1/2/4 workers --------------------------------
    fleets: dict[int, dict] = {}
    diffs = []
    last_fleet = None
    warm = None
    try:
        for n_workers in WORKER_COUNTS:
            fleet = [_start_worker() for _ in range(n_workers)]
            hosts = ",".join(f"127.0.0.1:{port}" for _, port in fleet)
            t0 = time.perf_counter()
            remote = solve_stack(stack, method="mvasd", cache=None, hosts=hosts)
            elapsed = time.perf_counter() - t0
            diffs.append(_max_diff(remote, serial))
            fleets[n_workers] = {
                "seconds": round(elapsed, 4),
                "scenarios_per_second": round(N_SCENARIOS / elapsed, 2),
                "speedup_vs_serial": round(t_serial / elapsed, 2),
            }
            if n_workers == WORKER_COUNTS[-1]:
                # -- warm leg: same fleet, same sweep twice ------------------
                # Shards are pulled off a shared queue, so a repeat sweep may
                # land a shard on the *other* worker (a cold miss that then
                # warms that worker too).  Two repeats make the hit count
                # robust to any assignment shuffle.
                before = [ServeClient(port=p).cache_stats() for _, p in fleet]
                solve_stack(stack, method="mvasd", cache=None, hosts=hosts)
                t0 = time.perf_counter()
                rewarm = solve_stack(stack, method="mvasd", cache=None, hosts=hosts)
                t_warm = time.perf_counter() - t0
                after = [ServeClient(port=p).cache_stats() for _, p in fleet]
                diffs.append(_max_diff(rewarm, serial))
                gained = sum(a["hits"] - b["hits"] for a, b in zip(after, before))
                shards_seen = sum(
                    (a["hits"] + a["misses"]) - (b["hits"] + b["misses"])
                    for a, b in zip(after, before)
                )
                warm = {
                    "seconds": round(t_warm, 4),
                    "cache_hits_gained": gained,
                    "hit_rate": round(gained / max(1, shards_seen), 3),
                    "speedup_vs_cold_fleet": round(elapsed / t_warm, 2),
                }
                last_fleet = fleet
            else:
                _stop_fleet(fleet)
    finally:
        if last_fleet is not None:
            _stop_fleet(last_fleet)

    # -- leg 3: kill-and-resume via the checkpoint journal --------------------
    fleet = [_start_worker() for _ in range(2)]
    hosts = ",".join(f"127.0.0.1:{port}" for _, port in fleet)
    ck_path = str(tmp_path / "perf05.ckpt")
    try:
        full = solve_stack(
            stack, method="mvasd", cache=None, hosts=hosts, checkpoint=ck_path
        )
        lines = Path(ck_path).read_text().splitlines()
        # tear the journal mid-file, as a crash would, and take a worker down
        kept = max(1, len(lines) // 2)
        Path(ck_path).write_text("\n".join(lines[:kept]) + "\n")
        fleet[1][0].send_signal(signal.SIGKILL)
        fleet[1][0].wait()
        t0 = time.perf_counter()
        resumed = solve_stack(
            stack,
            method="mvasd",
            cache=None,
            hosts=hosts,
            checkpoint=ck_path,
            retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
        )
        t_resume = time.perf_counter() - t0
        resume_identical = all(
            np.array_equal(getattr(resumed, f), getattr(full, f))
            for f in ("throughput", "response_time", "queue_lengths", "utilizations")
        )
        diffs.append(_max_diff(full, serial))
    finally:
        _stop_fleet(fleet)

    # -- USL fit over the throughput-vs-workers curve --------------------------
    workers_axis = np.asarray(WORKER_COUNTS, dtype=float)
    rates = np.asarray(
        [fleets[w]["scenarios_per_second"] for w in WORKER_COUNTS], dtype=float
    )
    usl = UniversalScalabilityLaw.fit(workers_axis, rates)

    max_diff = max(diffs)
    best = max(f["speedup_vs_serial"] for f in fleets.values())
    cores = os.cpu_count() or 1
    payload = {
        "bench": "perf05_fabric",
        "quick_mode": QUICK,
        "host_cpu_cores": cores,
        "scenarios": N_SCENARIOS,
        "max_population": MAX_POPULATION,
        "serial_seconds": round(t_serial, 4),
        "serial_scenarios_per_second": round(N_SCENARIOS / t_serial, 2),
        "workers": {str(w): stats for w, stats in fleets.items()},
        "warm_fleet": warm,
        "best_speedup_vs_serial": best,
        "max_abs_diff_vs_serial": max_diff,
        "kill_and_resume": {
            "journal_shards_kept": kept,
            "resume_seconds": round(t_resume, 4),
            "bit_identical": resume_identical,
        },
        "usl_fit": {
            "lambda": round(usl.lambda_, 4),
            "sigma": round(usl.sigma, 6),
            "kappa": round(usl.kappa, 8),
            "peak_workers": None
            if usl.peak_concurrency == np.inf
            else round(usl.peak_concurrency, 1),
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "PERF-05 — execution fabric: remote workers vs serial",
        f"{N_SCENARIOS} scenarios x N={MAX_POPULATION}, host cores: {cores}",
        f"  serial: {t_serial:.3f}s = {N_SCENARIOS / t_serial:.1f} scenarios/s",
    ]
    for w, stats in fleets.items():
        lines.append(
            f"  workers={w}: {stats['seconds']:.3f}s = "
            f"{stats['scenarios_per_second']:.1f} scenarios/s "
            f"({stats['speedup_vs_serial']:.1f}x serial)"
        )
    lines += [
        f"  warm fleet: {warm['seconds']:.3f}s, hit rate {warm['hit_rate']:.0%}",
        f"  kill-and-resume: {t_resume:.3f}s, bit-identical: {resume_identical}",
        f"  USL fit: lambda={usl.lambda_:.2f}, sigma={usl.sigma:.4f}, "
        f"kappa={usl.kappa:.2e}",
        f"  max |remote - serial|: {max_diff:.2e}",
    ]
    emit("\n".join(lines))

    assert max_diff <= ATOL, "remote sweep diverged from the serial reference"
    assert resume_identical, "checkpoint resume was not bit-identical"
    assert warm["cache_hits_gained"] >= 1, "warm sweep never hit the worker caches"
    if not QUICK:
        # Batched kernels on the workers plus fan-out must clear 2x serial.
        assert best >= 2.0, f"best fleet speedup {best:.2f}x below the 2x floor"
