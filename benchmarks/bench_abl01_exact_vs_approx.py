"""Ablation 1 — exact vs approximate multi-server MVA.

The paper argues (vs MAQ-PRO, its ref. [24]) that using an *approximate*
multi-server MVA hurts accuracy at high concurrency.  Compares, on the
JPetStore 16-core bottleneck with fixed demands: the exact solver
(convolution-backed Algorithm 2), the renormalized marginal recursion,
and the Seidmann+Schweitzer approximation.
"""

import numpy as np

from repro.analysis import format_table, mean_percent_deviation
from repro.core import (
    approximate_multiserver_mva,
    exact_multiserver_mva,
    linearizer_multiserver_mva,
)
from repro.loadtest.runner import extract_demands


def test_abl01_exact_vs_approximate(benchmark, jps_sweep, emit):
    app = jps_sweep.application
    run140 = dict(zip(jps_sweep.levels.tolist(), jps_sweep.runs))[140]
    demands = extract_demands(run140, app)
    vector = [demands[n] for n in app.network.station_names]

    def solve_all():
        return {
            "exact (convolution)": exact_multiserver_mva(
                app.network, 280, demands=vector, station_detail=False
            ),
            "recursion (renormalized)": exact_multiserver_mva(
                app.network, 280, demands=vector, method="recursion"
            ),
            "approximate (Seidmann+Schweitzer)": approximate_multiserver_mva(
                app.network, 280, demands=vector
            ),
            "approximate (Seidmann+Linearizer)": linearizer_multiserver_mva(
                app.network, 280, demands=vector
            ),
        }

    results = benchmark.pedantic(solve_all, rounds=1, iterations=1)

    exact = results["exact (convolution)"]
    rows = []
    for name, res in results.items():
        dev = (
            0.0
            if res is exact
            else mean_percent_deviation(res.throughput, exact.throughput)
        )
        worst = (
            0.0
            if res is exact
            else float(
                (np.abs(res.throughput - exact.throughput) / exact.throughput).max()
                * 100
            )
        )
        rows.append((name, res.throughput[-1], dev, worst))
    text = format_table(
        ("Solver", "X(280)", "mean dev vs exact (%)", "worst dev (%)"),
        rows,
        title="Ablation 1 — multi-server solver accuracy on JPetStore demands (16-core bottleneck)",
    )
    text += (
        "\n\nApproximation error concentrates in the saturation transition "
        "— exactly where the paper's evaluation lives (N=100..200)."
    )
    emit(text)

    dev_rec = mean_percent_deviation(
        results["recursion (renormalized)"].throughput, exact.throughput
    )
    dev_apx = mean_percent_deviation(
        results["approximate (Seidmann+Schweitzer)"].throughput, exact.throughput
    )
    # Both alternatives deviate from exact, and stay within sane bands.
    assert 0 < dev_rec < 3.0
    assert 0 < dev_apx < 10.0
