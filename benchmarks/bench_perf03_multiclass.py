"""PERF-03 — batched multi-class kernels vs the per-scenario scalar loop.

Times the PR-6 multi-class execution path on a what-if demand grid and
records the results in ``BENCH_perf03.json`` at the repo root:

* **Batched exact multi-class** — a 64-scenario demand-scaling grid
  solved by ``solve_stack(method="exact-multiclass")`` through the
  ``batched`` backend (one vectorized class-lattice walk for the whole
  stack) vs the ``serial`` per-scenario loop.  Must agree to ≤1e-10
  and, in full mode, be ≥3x faster.
* **Batched multi-class MVASD** — the same grid with varying per-class
  demand curves through ``batched-multiclass-mvasd``, parity-gated
  against the scalar sweep.
* **Masked isolation** — one scenario poisoned with a deterministic
  kernel fault under ``errors="isolate"``: the failed row must come
  back as a structured ``ScenarioFailure`` with NaN outputs while the
  surviving rows are still solved by the batched kernel (backend
  metadata says ``batched``, not a ``stacked-`` serial label) and match
  the clean batched run bit-for-bit.

Assertions gate on parity and routing always; the ≥3x speedup floor is
enforced only in full mode (``REPRO_BENCH_QUICK=1`` shrinks class
populations for the CI smoke job, where timings are recorded but too
noisy to gate on).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.network import ClosedNetwork, Station
from repro.engine import FaultPlan, faults
from repro.solvers import Scenario, WorkloadClass, solve_stack

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf03.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

N_SCENARIOS = 64
#: Class populations — the exact lattice costs prod_c (N_c + 1) points.
POPULATIONS = (6, 5) if QUICK else (12, 10)
POISONED_SCENARIO = 5


def _three_tier() -> ClosedNetwork:
    return ClosedNetwork(
        [
            Station("web", demand=0.04),
            Station("app", demand=0.06),
            Station("db", demand=0.05),
        ],
        think_time=1.0,
    )


def _constant_stack(network) -> list[Scenario]:
    n = sum(POPULATIONS)
    scales = np.linspace(0.7, 1.3, N_SCENARIOS)
    stack = []
    for s in scales:
        classes = (
            WorkloadClass(
                "browse",
                POPULATIONS[0],
                {"web": 0.040 * s, "app": 0.030 * s, "db": 0.020 * s},
                think_time=1.0,
            ),
            WorkloadClass(
                "buy",
                POPULATIONS[1],
                {"web": 0.015 * s, "app": 0.060 * s, "db": 0.050 * s},
                think_time=0.5,
            ),
        )
        stack.append(Scenario(network, n, classes=classes))
    return stack


class _Ramp:
    """Picklable per-class demand curve (base demand + linear ramp)."""

    def __init__(self, base: float, slope: float) -> None:
        self.base = base
        self.slope = slope

    def __call__(self, total):
        return self.base * (1.0 + self.slope * total)


def _varying_stack(network) -> list[Scenario]:
    n = sum(POPULATIONS)
    scales = np.linspace(0.8, 1.2, N_SCENARIOS)
    stack = []
    for s in scales:
        classes = (
            WorkloadClass(
                "browse",
                POPULATIONS[0],
                {
                    "web": _Ramp(0.040 * s, 0.004),
                    "app": _Ramp(0.030 * s, 0.002),
                    "db": 0.020 * s,
                },
                think_time=1.0,
            ),
            WorkloadClass(
                "buy",
                POPULATIONS[1],
                {"web": 0.015 * s, "app": _Ramp(0.060 * s, 0.003), "db": 0.050 * s},
                think_time=0.5,
            ),
        )
        stack.append(Scenario(network, n, classes=classes))
    return stack


def test_perf03_multiclass_batched_vs_scalar(emit):
    network = _three_tier()

    # -- leg 1: exact multi-class, batched kernel vs scalar loop --------------
    stack = _constant_stack(network)
    t0 = time.perf_counter()
    serial = solve_stack(stack, method="exact-multiclass", backend="serial", cache=None)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = solve_stack(stack, method="exact-multiclass", backend="batched", cache=None)
    t_batched = time.perf_counter() - t0

    exact_diff = float(np.abs(batched.throughput - serial.throughput).max())
    exact_speedup = t_serial / t_batched if t_batched > 0 else float("inf")

    # The routing claim itself: auto must pick the kernel, not the loop.
    auto = solve_stack(stack, cache=None)
    assert auto.backend == "batched" and not auto.solver.startswith("stacked-")

    # -- leg 2: multi-class MVASD (varying demands), same comparison ----------
    vstack = _varying_stack(network)
    t0 = time.perf_counter()
    vserial = solve_stack(vstack, method="multiclass-mvasd", backend="serial", cache=None)
    t_vserial = time.perf_counter() - t0

    t0 = time.perf_counter()
    vbatched = solve_stack(vstack, method="multiclass-mvasd", backend="batched", cache=None)
    t_vbatched = time.perf_counter() - t0

    mvasd_diff = float(np.abs(vbatched.throughput - vserial.throughput).max())
    mvasd_speedup = t_vserial / t_vbatched if t_vbatched > 0 else float("inf")

    # -- leg 3: masked isolation keeps survivors on the batched kernel --------
    plan = FaultPlan.parse(f"raise-in-kernel@scenario={POISONED_SCENARIO}")
    with faults.injected(plan):
        isolated = solve_stack(
            stack,
            method="exact-multiclass",
            backend="batched",
            cache=None,
            errors="isolate",
        )
    survivors = [i for i in range(N_SCENARIOS) if i != POISONED_SCENARIO]

    cores = os.cpu_count() or 1
    payload = {
        "bench": "perf03_multiclass",
        "quick_mode": QUICK,
        "host_cpu_cores": cores,
        "exact_multiclass": {
            "scenarios": N_SCENARIOS,
            "class_populations": list(POPULATIONS),
            "lattice_points": int(np.prod([p + 1 for p in POPULATIONS])),
            "stations": len(network),
            "serial_seconds": round(t_serial, 4),
            "batched_seconds": round(t_batched, 4),
            "speedup": round(exact_speedup, 2),
            "max_abs_throughput_diff": exact_diff,
            "solver_labels": [serial.solver, batched.solver],
        },
        "multiclass_mvasd": {
            "scenarios": N_SCENARIOS,
            "max_total_population": sum(POPULATIONS),
            "serial_seconds": round(t_vserial, 4),
            "batched_seconds": round(t_vbatched, 4),
            "speedup": round(mvasd_speedup, 2),
            "max_abs_throughput_diff": mvasd_diff,
        },
        "masked_isolation": {
            "poisoned_scenario": POISONED_SCENARIO,
            "backend": isolated.backend,
            "failed_indices": list(isolated.failed_indices),
            "survivors_bit_identical": bool(
                np.array_equal(
                    isolated.throughput[survivors], batched.throughput[survivors]
                )
            ),
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "\n".join(
            [
                "PERF-03 — multi-class batched kernels",
                f"Exact multi-class: {N_SCENARIOS} scenarios, classes "
                f"{POPULATIONS}, K={len(network)} (host cores: {cores})",
                f"  serial loop: {t_serial:.3f}s   batched kernel: {t_batched:.3f}s   "
                f"speedup: {exact_speedup:.1f}x   max |dX|: {exact_diff:.2e}",
                f"Multi-class MVASD: {N_SCENARIOS} scenarios x "
                f"N={sum(POPULATIONS)} totals",
                f"  serial loop: {t_vserial:.3f}s   batched kernel: {t_vbatched:.3f}s   "
                f"speedup: {mvasd_speedup:.1f}x   max |dX|: {mvasd_diff:.2e}",
                f"Masked isolation: scenario {POISONED_SCENARIO} poisoned -> "
                f"backend={isolated.backend}, failures={isolated.failed_indices}",
            ]
        )
    )

    # Parity and routing gates (always); speedup floor in full mode only.
    assert exact_diff <= 1e-10, "batched exact-multiclass diverged from the scalar loop"
    assert mvasd_diff <= 1e-10, "batched multiclass-mvasd diverged from the scalar loop"
    assert batched.solver == "batched-exact-multiclass"
    assert serial.solver == "stacked-exact-multiclass"
    assert isolated.backend == "batched", "isolation demoted survivors off the kernel"
    assert isolated.failed_indices == (POISONED_SCENARIO,)
    assert np.isnan(isolated.throughput[POISONED_SCENARIO]).all()
    assert payload["masked_isolation"]["survivors_bit_identical"]
    if not QUICK:
        assert exact_speedup >= 3.0, (
            f"batched exact-multiclass speedup {exact_speedup:.1f}x below the 3x floor"
        )
