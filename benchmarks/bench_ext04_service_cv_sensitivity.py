"""Extension 4 — sensitivity to the exponential-service assumption.

Exact MVA is exact only for product-form networks (FCFS stations need
exponential service).  Re-running the testbed with other service-time
families at the same means shows how far the measured system drifts
from the MVA prediction as the coefficient of variation departs from 1
— the hidden assumption underneath the paper's whole evaluation.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ClosedNetwork, Station, exact_multiserver_mva
from repro.simulation import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    simulate_closed_network,
)

SHAPES = (
    ("deterministic (CV 0)", Deterministic()),
    ("Erlang-4 (CV 0.5)", Erlang(4)),
    ("exponential (CV 1)", Exponential()),
    ("hyperexp (CV 2)", HyperExponential(2.0)),
    ("hyperexp (CV 3)", HyperExponential(3.0)),
)


def test_ext04_service_time_cv_sensitivity(benchmark, emit):
    # Operating point in the saturation *transition* (~80% bottleneck
    # utilization) — deep saturation hides variability effects because
    # every distribution hits the same rate ceiling.
    net = ClosedNetwork(
        [Station("cpu", 0.12, servers=4), Station("disk", 0.05)], think_time=1.0
    )
    users = 18
    mva = exact_multiserver_mva(net, users)
    pred = float(mva.throughput[-1])

    def run_all():
        out = {}
        for label, shape in SHAPES:
            xs = [
                simulate_closed_network(
                    net, users, duration=400.0, warmup=40.0, seed=s, service_shape=shape
                ).throughput
                for s in (1, 2, 3)
            ]
            out[label] = (float(np.mean(xs)), shape.cv)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (label, cv, x, (x - pred) / pred * 100)
        for label, (x, cv) in results.items()
    ]
    text = format_table(
        ("Service distribution", "CV", "measured X", "drift vs exact MVA %"),
        rows,
        precision=2,
        title=f"Extension 4 — product-form sensitivity at {users} users (MVA predicts {pred:.2f}/s)",
    )
    text += (
        "\n\nCV < 1 runs faster than predicted, CV > 1 slower; the exponential "
        "testbed (CV 1) is the regime where MVA/MVASD deviations are pure model error."
    )
    emit(text)

    x_det = results["deterministic (CV 0)"][0]
    x_exp = results["exponential (CV 1)"][0]
    x_h3 = results["hyperexp (CV 3)"][0]
    assert abs(x_exp - pred) / pred < 0.02
    assert x_det > x_exp > x_h3
