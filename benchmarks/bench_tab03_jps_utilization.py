"""Table 3 — Utilization % observed during load testing of JPetStore.

The paper's anchor (underlined in Table 3): database CPU *and* disk
saturate together near 140 users — JPetStore is the CPU-heavy workload.
"""

from repro.loadtest import utilization_table_text


def test_tab03_jpetstore_utilization_grid(benchmark, jps_sweep, emit):
    text = benchmark.pedantic(
        lambda: utilization_table_text(jps_sweep), rounds=1, iterations=1
    )
    text += (
        "\n\nAnchors (paper Table 3): db CPU and db Disk saturate together "
        "near 140 users."
    )
    emit(text)

    rows = dict(
        (users, tiers) for users, tiers in jps_sweep.utilization_table()
    )
    at140 = rows[140]
    assert at140["db"].cpu > 85.0
    assert at140["db"].disk > 85.0
    # and well below saturation at 70 users
    at70 = rows[70]
    assert at70["db"].cpu < 60.0
