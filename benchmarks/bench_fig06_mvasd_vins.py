"""Fig. 6 — MVASD (Alg. 3) vs multi-server MVA (Alg. 2) on VINS.

With the spline-interpolated demand array as input, MVASD's predicted
throughput and cycle-time curves track the measured data where the
fixed-demand ``MVA i`` curves deviate.
"""

import numpy as np

from repro.analysis import format_series, mean_percent_deviation
from repro.core import exact_multiserver_mva, mvasd
from repro.loadtest.runner import extract_demands


def test_fig06_mvasd_tracks_measured(benchmark, vins_sweep, emit):
    app = vins_sweep.application
    table = vins_sweep.demand_table()

    result = benchmark.pedantic(
        lambda: mvasd(app.network, 1500, demand_functions=table.functions()),
        rounds=1,
        iterations=1,
    )

    # MVA 203 as the representative fixed-demand competitor.
    run203 = dict(zip(vins_sweep.levels.tolist(), vins_sweep.runs))[203]
    demands203 = extract_demands(run203, app)
    mva203 = exact_multiserver_mva(
        app.network,
        1500,
        demands=[demands203[n] for n in app.network.station_names],
        station_detail=False,
    )

    lv = vins_sweep.levels.astype(float)
    text = format_series(
        "Users",
        vins_sweep.levels,
        {
            "Measured X": np.round(vins_sweep.throughput, 2),
            "MVASD X": np.round(result.interpolate_throughput(lv), 2),
            "MVA203 X": np.round(mva203.interpolate_throughput(lv), 2),
            "Measured R+Z": np.round(vins_sweep.cycle_time, 3),
            "MVASD R+Z": np.round(result.interpolate_cycle_time(lv), 3),
            "MVA203 R+Z": np.round(mva203.interpolate_cycle_time(lv), 3),
        },
        title="Fig. 6 — VINS: measured vs MVASD vs MVA 203",
    )
    dev_mvasd = mean_percent_deviation(
        result.interpolate_throughput(lv), vins_sweep.throughput
    )
    dev_mva = mean_percent_deviation(
        mva203.interpolate_throughput(lv), vins_sweep.throughput
    )
    text += f"\n\nThroughput deviation — MVASD: {dev_mvasd:.2f}%, MVA 203: {dev_mva:.2f}%"
    emit(text)

    # Headline shape: MVASD clearly better than the fixed-demand model.
    assert dev_mvasd < dev_mva
    assert dev_mvasd < 3.0  # the paper's VINS throughput band
