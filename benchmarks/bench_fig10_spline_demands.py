"""Fig. 10 — spline-interpolated service demands for the VINS DB server.

Cubic splines through the measured demand samples overlap the samples
exactly and interpolate the unsampled concurrencies; the overall trend
is decreasing demand with workload.
"""

import numpy as np

from repro.analysis import format_series
from repro.interpolate import ServiceDemandModel


def test_fig10_spline_interpolated_demands(benchmark, vins_sweep, emit):
    samples = vins_sweep.demand_samples()
    levels = vins_sweep.levels.astype(float)

    models = benchmark.pedantic(
        lambda: {
            name: ServiceDemandModel(levels, samples[name])
            for name in ("db.cpu", "db.disk")
        },
        rounds=1,
        iterations=1,
    )

    grid = np.unique(
        np.concatenate([levels, np.linspace(1, 1421, 15).round()])
    )
    series = {}
    for name, model in models.items():
        series[f"{name} (ms)"] = np.round(model(grid) * 1000, 3)
        truth = vins_sweep.application.network[name]
        series[f"{name} truth"] = np.round(
            [truth.demand_at(g) * 1000 for g in grid], 3
        )
    text = format_series(
        "Users",
        grid.astype(int),
        series,
        title="Fig. 10 — VINS DB demands: spline interpolation vs ground truth (ms/page)",
    )
    emit(text)

    # Splines pass through the measured samples …
    for name, model in models.items():
        np.testing.assert_allclose(model(levels), samples[name], rtol=1e-9)
    # … decrease overall …
    for name, model in models.items():
        dense = model(np.linspace(1, 1421, 200))
        assert dense[-1] < dense[0]
    # … and track the generating profile within measurement noise.
    for name, model in models.items():
        truth = vins_sweep.application.network[name]
        np.testing.assert_allclose(model(700.0), truth.demand_at(700.0), rtol=0.1)
