"""PERF-01 — batched kernels vs per-scenario loops, parallel vs serial DES.

Times the two legs of the :mod:`repro.engine` execution layer on
paper-sized workloads and records the results in ``BENCH_perf01.json``
at the repo root:

* **Batched MVASD** — a 64-scenario what-if grid (demand scalings of
  the JPetStore spline demand curves) solved by
  :func:`~repro.engine.batched.batched_mvasd` in one recursion vs the
  per-scenario scalar :func:`~repro.core.mvasd.mvasd` loop.  The
  batched kernel must be >= 5x faster and agree to 1e-10.
* **Parallel DES replications** — ``run_replicated_sweep`` with 1, 2
  and 4 workers.  Results must be bit-identical across worker counts;
  wall-clock scaling is recorded always and asserted near-linear only
  when the host actually has the cores (CI containers are often
  single-core, where a fork-join pool cannot speed anything up).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.mvasd import mvasd, precompute_demand_matrix
from repro.engine import batched_mvasd
from repro.loadtest.replication import run_replicated_sweep

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf01.json"

N_SCENARIOS = 64
MAX_POPULATION = 280
REPLICATIONS = 4
WORKER_COUNTS = (1, 2, 4)


class _Scaled:
    """Picklable demand-curve scaling (the per-scenario loop's input)."""

    def __init__(self, fn, factor: float) -> None:
        self.fn = fn
        self.factor = factor

    def __call__(self, level):
        return self.fn(level) * self.factor


def test_perf01_batched_mvasd_and_parallel_des(jps_app, jps_sweep, emit):
    table = jps_sweep.demand_table(kind="cubic")
    network = jps_app.network
    fns = [table.models[name] for name in network.station_names]
    scales = np.linspace(0.7, 1.3, N_SCENARIOS)

    # -- leg 1: batched kernel vs per-scenario loop ---------------------------
    t0 = time.perf_counter()
    loop_results = [
        mvasd(
            network,
            MAX_POPULATION,
            demand_functions=[_Scaled(f, s) for f in fns],
        )
        for s in scales
    ]
    t_loop = time.perf_counter() - t0

    t0 = time.perf_counter()
    base_matrix = precompute_demand_matrix(fns, MAX_POPULATION)
    matrices = base_matrix[None, :, :] * scales[:, None, None]
    batched = batched_mvasd(network, MAX_POPULATION, matrices)
    t_batched = time.perf_counter() - t0

    max_diff = max(
        float(np.abs(batched.throughput[i] - r.throughput).max())
        for i, r in enumerate(loop_results)
    )
    speedup = t_loop / t_batched

    # -- leg 2: DES replication scaling ---------------------------------------
    levels = (1, 26, 51)
    duration = 60.0
    des = {}
    reference = None
    for workers in WORKER_COUNTS:
        t0 = time.perf_counter()
        replicated = run_replicated_sweep(
            jps_app,
            replications=REPLICATIONS,
            levels=levels,
            duration=duration,
            seed=31,
            workers=workers,
        )
        elapsed = time.perf_counter() - t0
        values = np.vstack([s.throughput for s in replicated.sweeps])
        if reference is None:
            reference = values
        bit_identical = bool(np.array_equal(values, reference))
        des[workers] = {"seconds": elapsed, "bit_identical": bit_identical}

    cores = os.cpu_count() or 1
    for workers in WORKER_COUNTS[1:]:
        # A worker count above the host's core count cannot speed anything
        # up — a fork-join pool on a 1-core runner just adds overhead.
        # Recording 0.7x "speedups" there reads as a regression, so flag
        # the count as oversubscribed instead of reporting a ratio.
        if workers > cores:
            des[workers]["oversubscribed"] = True
        else:
            des[workers]["speedup"] = des[1]["seconds"] / des[workers]["seconds"]
    payload = {
        "bench": "perf01_batch_speedup",
        "host_cpu_cores": cores,
        "batched_mvasd": {
            "scenarios": N_SCENARIOS,
            "max_population": MAX_POPULATION,
            "stations": len(network),
            "loop_seconds": round(t_loop, 4),
            "batched_seconds": round(t_batched, 4),
            "speedup": round(speedup, 2),
            "max_abs_throughput_diff": max_diff,
        },
        "des_replications": {
            "replications": REPLICATIONS,
            "levels": list(levels),
            "duration": duration,
            "workers": {
                str(w): {k: (round(v, 4) if isinstance(v, float) else v)
                         for k, v in stats.items()}
                for w, stats in des.items()
            },
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "PERF-01 — engine throughput",
        f"Batched MVASD: {N_SCENARIOS} scenarios x N={MAX_POPULATION}, "
        f"K={len(network)} stations",
        f"  per-scenario loop: {t_loop:.3f}s   batched kernel: {t_batched:.3f}s   "
        f"speedup: {speedup:.1f}x   max |dX|: {max_diff:.2e}",
        f"DES replications (R={REPLICATIONS}, host cores: {cores}):",
    ]
    for workers, stats in des.items():
        if "speedup" in stats:
            extra = f"   speedup {stats['speedup']:.2f}x"
        elif stats.get("oversubscribed"):
            extra = f"   oversubscribed ({workers} workers > {cores} cores; no speedup expected)"
        else:
            extra = ""
        lines.append(
            f"  workers={workers}: {stats['seconds']:.2f}s   "
            f"bit-identical: {stats['bit_identical']}{extra}"
        )
    emit("\n".join(lines))

    assert max_diff <= 1e-10, "batched kernel diverged from the scalar solver"
    assert speedup >= 5.0, f"batched speedup {speedup:.1f}x below the 5x floor"
    assert all(stats["bit_identical"] for stats in des.values())
    if cores >= 4:
        # Near-linear: 4 workers must buy at least ~2.4x on a 4-core host.
        assert des[4]["speedup"] >= 2.4, (
            f"4-worker speedup {des[4]['speedup']:.2f}x not near-linear"
        )
