"""Fig. 14 — spline interpolation of service demands with Chebyshev
3 / 5 / 7 node designs (JPetStore database disk).

Load tests placed at Chebyshev positions over [1, 300] yield splines
free of Runge oscillation at every design size.
"""

import numpy as np

from repro.analysis import format_series
from repro.loadtest import run_sweep
from repro.workflow import design_points


def test_fig14_chebyshev_designed_splines(benchmark, jps_app, jps_sweep, emit):
    designs = {n: design_points(n, 1, 300, strategy="chebyshev") for n in (3, 5, 7)}

    def measure_and_fit():
        tables = {}
        for n, pts in designs.items():
            sweep = run_sweep(
                jps_app, levels=[int(p) for p in pts], duration=120.0, seed=40 + n
            )
            tables[n] = sweep.demand_table()
        return tables

    tables = benchmark.pedantic(measure_and_fit, rounds=1, iterations=1)

    dense = jps_sweep.demand_table()
    grid = np.array([1, 25, 50, 85, 120, 155, 190, 225, 260, 295], float)
    station = "db.disk"
    series = {"dense ref": np.round(dense.models[station](grid) * 1000, 3)}
    oscillation = {}
    for n, table in tables.items():
        curve = table.models[station]
        series[f"Chebyshev {n}"] = np.round(curve(grid) * 1000, 3)
        probe = np.linspace(1, 300, 200)
        vals = curve(probe)
        # sign changes of the derivative = undulations (Runge symptom)
        slope_signs = np.sign(np.diff(vals))
        slope_signs = slope_signs[slope_signs != 0]
        oscillation[n] = int((np.diff(slope_signs) != 0).sum())

    text = format_series(
        "Users",
        grid.astype(int),
        series,
        title="Fig. 14 — db.disk demand splines from Chebyshev designs (ms/page)",
    )
    text += "\n\nDesign points: " + "; ".join(
        f"Cheb-{n}: {list(map(int, pts))}" for n, pts in designs.items()
    )
    text += "\nSlope reversals over [1,300]: " + ", ".join(
        f"Cheb-{n}: {c}" for n, c in oscillation.items()
    )
    emit(text)

    # No Runge oscillation: a monotone decaying demand (plus one mild
    # saturation bump) admits at most 2 slope reversals.
    for n, count in oscillation.items():
        assert count <= 2, f"Chebyshev-{n} oscillates ({count} reversals)"
