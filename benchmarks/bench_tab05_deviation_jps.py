"""Table 5 — mean deviation in modeling the JPetStore application.

As Table 4, with the additional "MVASD: Single-Server" baseline.
Paper bands: MVASD ~2.2 % (X) / 1.2 % (R+Z); single-server-normalized
~17.8 % / 12.1 %; MVA i in between.
"""

from repro.analysis import compare_models

MVA_LEVELS = (28, 70, 140, 210)


def test_tab05_jpetstore_deviation_table(benchmark, jps_sweep, emit):
    cmp_ = benchmark.pedantic(
        lambda: compare_models(
            jps_sweep,
            max_population=280,
            mva_levels=MVA_LEVELS,
            include_single_server=True,
        ),
        rounds=1,
        iterations=1,
    )
    text = cmp_.table()
    text += (
        "\n\nPaper Table 5 bands: MVASD 2.22% (X) / 1.20% (R+Z); "
        "Single-Server 17.8% / 12.1%; MVA i worse than MVASD throughout."
    )
    emit(text)

    dev = cmp_.deviations
    assert dev["MVASD"]["throughput"] < 5.0
    assert dev["MVASD"]["cycle_time"] < 3.0
    # MVASD beats every fixed-demand variant and the single-server baseline.
    for name, report in dev.items():
        if name != "MVASD":
            assert report["throughput"] >= dev["MVASD"]["throughput"], name
    assert (
        dev["MVASD: Single-Server"]["throughput"] > 2 * dev["MVASD"]["throughput"]
    )
    assert cmp_.best("throughput") == "MVASD"
