"""Extension 5 — open-system analysis with throughput-axis demand curves.

Section 7 motivates fitting demands against throughput for open systems,
"where throughput can be modified much easier".  Here the JPetStore
demand curves fitted on the throughput axis feed the open M/M/C
analyzer: response time and population vs offered arrival rate, with the
saturation wall at the bottleneck capacity.
"""

import numpy as np

from repro.analysis import format_series
from repro.core.open_network import analyze_open


def test_ext05_open_system_curves(benchmark, jps_app, jps_sweep, emit):
    table = jps_sweep.demand_table(axis="throughput")
    fns = table.functions()

    # capacity at the warm end of the demand curves
    warm = {name: fn(200.0) for name, fn in fns.items()}
    cap = min(
        st.servers / warm[st.name]
        for st in jps_app.network.stations
        if warm[st.name] > 0
    )
    rates = np.round(np.linspace(5, cap * 0.97, 10), 1)

    def solve_all():
        return [analyze_open(jps_app.network, lam, demand_functions=fns) for lam in rates]

    results = benchmark.pedantic(solve_all, rounds=1, iterations=1)

    text = format_series(
        "lambda (pages/s)",
        rates,
        {
            "R (s)": np.round([r.response_time for r in results], 3),
            "N in system": np.round([r.population for r in results], 1),
            "db.cpu util": np.round(
                [r.utilizations[r.station_names.index("db.cpu")] for r in results], 2
            ),
        },
        title=f"Extension 5 — open JPetStore: response vs arrival rate (capacity ~{cap:.1f}/s)",
    )
    text += (
        "\n\nOn the throughput axis the operating point IS the arrival rate, "
        "so the Fig. 11 splines evaluate directly — no closed-model fixed "
        "point.  Note the initial response-time DIP: demand warm-up beats "
        "queueing growth at low rates (the varying-demand effect), before "
        "the hockey stick takes over near capacity."
    )
    emit(text)

    rs = [r.response_time for r in results]
    # hockey stick at the wall: the last points climb steeply...
    assert rs[-1] > rs[-2] > rs[-3]
    assert rs[-1] > 3 * min(rs)
    # ...while the warm-up dip shows the varying-demand effect early on.
    assert min(rs) < rs[0]
    # saturation guard works
    import pytest

    with pytest.raises(ValueError, match="saturated"):
        analyze_open(jps_app.network, cap * 1.1, demand_functions=fns)
