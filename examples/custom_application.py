"""Modeling your own application end-to-end.

Walks through everything a user does to model a system that is *not*
one of the bundled benchmarks: a two-tier REST API (an 8-core API
server in front of a database) with a connection-pool-like demand bump
at saturation onset.

* define per-resource demand profiles,
* assemble the closed network and simulate a load-test campaign,
* inspect the utilization table to find the bottleneck,
* fit demand splines and compare MVASD against the MVA i baselines,
* answer a deployment question ("how many users until p50 latency
  doubles?").

Run:  python examples/custom_application.py
"""

from repro import Station, ClosedNetwork, compare_models, run_sweep
from repro.apps import Application, Datapool, DemandProfile
from repro.loadtest import sweep_summary_text, utilization_table_text


def build_application() -> Application:
    profiles = {
        # API tier: 8 cores, CPU-heavy JSON handling that warms up with load.
        "api.cpu": DemandProfile.exp_decay(0.085, 0.064, 60.0),
        "api.disk": DemandProfile.constant(0.002),
        "api.net_tx": DemandProfile.constant(0.004),
        "api.net_rx": DemandProfile.constant(0.003),
        # Database tier: single volume, mild cache warm-up, and a
        # connection-pool bump once concurrency crosses ~90 users.
        "db.cpu": DemandProfile.exp_decay(0.050, 0.040, 60.0),
        "db.disk": DemandProfile.exp_decay(0.011, 0.009, 60.0).with_bump(
            center=95.0, width=12.0, amplitude=0.0012
        ),
        "db.net_tx": DemandProfile.constant(0.002),
        "db.net_rx": DemandProfile.constant(0.002),
    }
    stations = [
        Station(name, profile, servers=8 if name == "api.cpu" else 1)
        for name, profile in profiles.items()
    ]
    network = ClosedNetwork(stations, think_time=2.0, name="rest-api")
    return Application(
        name="REST-API",
        network=network,
        workflow="order-lookup",
        pages=4,
        datapool=Datapool(records=500_000, kind="item"),
        max_tested_concurrency=200,
        default_sample_levels=(1, 10, 25, 50, 90, 130, 170, 200),
        description="Two-tier REST API with an 8-core application server.",
    )


def main() -> None:
    app = build_application()
    print(f"Modeling {app.name}: {app.description}\n")

    print("Running the load-test campaign on the simulated testbed ...")
    sweep = run_sweep(app, duration=150.0, seed=17)
    print(sweep_summary_text(sweep))
    print()
    print(utilization_table_text(sweep))
    print(f"\nBottleneck at 150 users: {app.bottleneck(150)}")

    print("\nComparing MVASD against fixed-demand MVA baselines ...")
    comparison = compare_models(
        sweep, max_population=200, mva_levels=(1, 50, 130)
    )
    print(comparison.table())

    # Deployment question: when does the cycle time double vs light load?
    prediction = comparison.results["MVASD"]
    light = prediction.cycle_time[0]
    doubled = prediction.populations[prediction.cycle_time > 2 * light]
    if doubled.size:
        print(
            f"\nCycle time doubles (>{2 * light:.2f}s) at ~{int(doubled[0])} "
            "concurrent users — plan capacity reviews before that point."
        )
    else:
        print("\nCycle time never doubles in the modeled range.")


if __name__ == "__main__":
    main()
