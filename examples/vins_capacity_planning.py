"""Capacity planning for VINS — what-if analysis with MVASD.

The payoff of an analytical model over raw load testing: once the
demand curves are fitted from a few tests, hardware variations are a
re-solve, not a re-test.  This example:

* fits MVASD demand curves from the standard VINS campaign;
* checks an SLA ("cycle time under 4 s") against the current hardware
  and finds the maximum supported concurrency;
* evaluates two upgrades without any new load tests — a faster database
  disk array (halved db.disk demand) and doubling CPU cores — and shows
  only the one that touches the bottleneck helps.

Run:  python examples/vins_capacity_planning.py
"""

import numpy as np

from repro import mvasd, run_sweep, vins_application
from repro.analysis import format_table

SLA_CYCLE_TIME = 4.0  # seconds
TARGET_USERS = 600


def max_users_within_sla(result, sla: float) -> int:
    """Largest population whose predicted cycle time meets the SLA."""
    ok = result.cycle_time <= sla
    return int(result.populations[ok][-1]) if ok.any() else 0


def solve_variant(app, demand_fns, scale: dict[str, float] | None = None):
    """Re-solve MVASD with selected stations' demand curves scaled."""
    fns = dict(demand_fns)
    for station, factor in (scale or {}).items():
        base = fns[station]
        fns[station] = lambda n, _b=base, _f=factor: _b(n) * _f
    return mvasd(app.network, 1500, demand_functions=fns)


def main() -> None:
    app = vins_application()
    print(f"Fitting demand curves from the {app.name} load-test campaign ...")
    sweep = run_sweep(app, duration=150.0, seed=31)
    fns = sweep.demand_table().functions()

    variants = {
        "current hardware": solve_variant(app, fns),
        "2x faster DB disk array": solve_variant(app, fns, {"db.disk": 0.5}),
        "32-core CPUs (no disk change)": None,  # needs a different network
    }
    # Doubling cores changes C_k, not demands: rebuild the network.
    app32 = vins_application(cpu_cores=32)
    variants["32-core CPUs (no disk change)"] = mvasd(
        app32.network, 1500, demand_functions=fns
    )

    rows = []
    for name, result in variants.items():
        at_target = result.at(TARGET_USERS)
        rows.append(
            (
                name,
                result.throughput.max(),
                at_target["cycle_time"],
                "yes" if at_target["cycle_time"] <= SLA_CYCLE_TIME else "NO",
                max_users_within_sla(result, SLA_CYCLE_TIME),
            )
        )
    print()
    print(
        format_table(
            (
                "Configuration",
                "X_max (pages/s)",
                f"R+Z @ {TARGET_USERS} users (s)",
                f"SLA {SLA_CYCLE_TIME:.0f}s met",
                "max users in SLA",
            ),
            rows,
            title=f"VINS capacity plan — SLA: cycle time <= {SLA_CYCLE_TIME:.0f}s",
        )
    )

    base = variants["current hardware"]
    disk = variants["2x faster DB disk array"]
    cpu = variants["32-core CPUs (no disk change)"]
    print(
        "\nReading: VINS is database-DISK bound "
        f"(bottleneck: {app.bottleneck(600)}).\n"
        f"  - Halving the DB disk demand lifts X_max from {base.throughput.max():.0f} "
        f"to {disk.throughput.max():.0f} pages/s — and no further, because the "
        "bottleneck migrates to the load-injector disk (the paper monitors "
        "the injector for exactly this reason).\n"
        f"  - Doubling CPU cores moves X_max only to {cpu.throughput.max():.0f} pages/s — "
        "money spent off the bottleneck buys nothing (utilization law)."
    )


if __name__ == "__main__":
    main()
