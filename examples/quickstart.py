"""Quickstart — predict an application's performance from 5 load tests.

Runs the paper's Fig. 17 workflow against the bundled JPetStore model:

1. pick 5 Chebyshev-placed concurrency levels on [1, 300];
2. fire one simulated load test per level and extract service demands
   via the service-demand law;
3. spline-interpolate the demands and run MVASD over 1..280 users.

Then validates the prediction against an independent dense measurement
campaign, reproducing the paper's headline: a handful of well-placed
tests predict the whole throughput / response-time curve within a few
percent.

Run:  python examples/quickstart.py
"""

from repro import jpetstore_application, predict_performance, run_sweep
from repro.analysis import format_series


def main() -> None:
    app = jpetstore_application()
    print(f"Application: {app.name} — {app.description}\n")

    report = predict_performance(
        app,
        n_design_points=5,
        max_population=280,
        concurrency_range=(1, 300),
        duration=150.0,
        seed=7,
    )
    print(f"Step 1 — Chebyshev design points: {report.design.tolist()}")
    print(f"Step 2 — measured demands at the design points (db tier, ms/page):")
    for name in ("db.cpu", "db.disk"):
        row = ", ".join(
            f"N={int(l)}: {report.demand_table.models[name](float(l)) * 1000:.2f}"
            for l in report.design
        )
        print(f"    {name}: {row}")
    print(f"Step 3 — {report.prediction.summary()}\n")

    for n in (50, 140, 280):
        snap = report.predicted_at(n)
        print(
            f"  predicted @ {n:>3} users: {snap['throughput']:7.2f} pages/s, "
            f"cycle time {snap['cycle_time']:.3f}s, "
            f"db.cpu util {snap['utilizations']['db.cpu'] * 100:.0f}%"
        )

    print("\nValidating against an independent dense campaign ...")
    reference = run_sweep(app, duration=150.0, seed=123)
    deviation = report.validate(reference)
    print(
        f"  throughput deviation {deviation['throughput']:.2f}%, "
        f"cycle-time deviation {deviation['cycle_time']:.2f}% "
        "(paper band: <3% / <9%)"
    )

    lv = reference.levels.astype(float)
    print()
    print(
        format_series(
            "Users",
            reference.levels,
            {
                "measured X": reference.throughput.round(2),
                "predicted X": report.prediction.interpolate_throughput(lv).round(2),
                "measured R+Z": reference.cycle_time.round(3),
                "predicted R+Z": report.prediction.interpolate_cycle_time(lv).round(3),
            },
            title="Prediction vs measurement",
        )
    )


if __name__ == "__main__":
    main()
