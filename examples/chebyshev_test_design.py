"""Designing a load-test campaign with Chebyshev nodes (Section 8).

Given a test budget (licenses, time), where should the few load tests
go?  This example sizes a JPetStore campaign:

* prints the eq. 19 error-bound table to pick the node count;
* generates Chebyshev, uniform and random designs at that budget;
* runs each design, fits demand splines, predicts with MVASD and scores
  every strategy against a dense reference campaign.

Run:  python examples/chebyshev_test_design.py
"""

import numpy as np

from repro import jpetstore_application, mvasd, run_sweep
from repro.analysis import format_table, mean_percent_deviation
from repro.interpolate import exponential_error_bound
from repro.workflow import design_points

BUDGET = 5  # load tests we can afford
RANGE = (1, 300)


def main() -> None:
    app = jpetstore_application()

    print("Step 0 — how many tests do we need? (eq. 19 bound, exp-like demands)")
    rows = [
        (n, f"{exponential_error_bound(n, 0.5):.2e}", f"{exponential_error_bound(n, 1.0):.2e}")
        for n in range(2, 9)
    ]
    print(format_table(("nodes", "bound mu=0.5", "bound mu=1.0"), rows))
    print(f"-> past 5 nodes the bound is under 0.2%; we use budget = {BUDGET}.\n")

    print("Dense reference campaign (what an unlimited budget would measure) ...")
    reference = run_sweep(app, duration=150.0, seed=77)

    rows = []
    for strategy in ("chebyshev", "uniform", "random"):
        pts = design_points(BUDGET, *RANGE, strategy=strategy, seed=5)
        sweep = run_sweep(app, levels=[int(p) for p in pts], duration=150.0, seed=88)
        table = sweep.demand_table()
        prediction = mvasd(app.network, 280, demand_functions=table.functions())
        lv = reference.levels.astype(float)
        dev_x = mean_percent_deviation(
            prediction.interpolate_throughput(lv), reference.throughput
        )
        dev_ct = mean_percent_deviation(
            prediction.interpolate_cycle_time(lv), reference.cycle_time
        )
        rows.append((strategy, str(pts.tolist()), dev_x, dev_ct))

    print()
    print(
        format_table(
            ("Strategy", f"{BUDGET} test points", "X dev (%)", "R+Z dev (%)"),
            rows,
            title="Design-strategy shoot-out (validated against the dense campaign)",
        )
    )
    print(
        "\nChebyshev placement concentrates tests near the range ends where "
        "spline extrapolation is most fragile — the paper's recommendation "
        "for budget-constrained campaigns."
    )


if __name__ == "__main__":
    main()
