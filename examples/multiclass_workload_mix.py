"""Multi-class analysis — mixing the VINS workflows.

The paper models a single customer class (every user runs Renew Policy).
Real traffic mixes the application's four workflows — Registration, New
Policy, Renew Policy, Read Policy — each with its own resource appetite.
The exact multi-class MVA extension answers mix questions a single-class
model cannot:

* what happens to Renew-Policy latency when read-only traffic doubles?
* which workflow suffers most as the DB disk saturates?

Stations are reduced to their per-server demands (Seidmann-style) so the
multi-class recursion stays single-server; populations are kept modest
because the exact lattice grows as the product of class populations.

Run:  python examples/multiclass_workload_mix.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import exact_multiclass_mva

# Per-workflow demands (seconds/page) on the three dominant resources.
# Read-only traffic is cache-friendly (light disk); Registration writes
# heavily.  Values are per-server (CPU demands already divided by cores).
STATIONS = ("app.cpu/16", "db.cpu/16", "db.disk")
WORKFLOWS = {
    "Registration": [0.0046, 0.0056, 0.0450],
    "New Policy": [0.0040, 0.0049, 0.0350],
    "Renew Policy": [0.0040, 0.0049, 0.0300],
    "Read Policy": [0.0030, 0.0035, 0.0100],
}
THINK = 1.0


def solve(mix: dict[str, int]):
    names = list(WORKFLOWS)
    demands = np.array([WORKFLOWS[w] for w in names]).T  # (K, C)
    populations = [mix.get(w, 0) for w in names]
    res = exact_multiclass_mva(
        demands=demands,
        populations=populations,
        think_times=[THINK] * len(names),
        station_names=STATIONS,
    )
    return names, res


def main() -> None:
    base_mix = {"Registration": 4, "New Policy": 6, "Renew Policy": 14, "Read Policy": 8}
    heavy_read = dict(base_mix, **{"Read Policy": 16})

    rows = []
    for label, mix in (("base mix", base_mix), ("2x read traffic", heavy_read)):
        names, res = solve(mix)
        for w, x, r in zip(names, res.throughput, res.cycle_times):
            rows.append((label, w, mix[w], x, r))
        rows.append(
            (label, "TOTAL", sum(mix.values()), res.total_throughput, None)
        )

    print(
        format_table(
            ("Scenario", "Workflow", "users", "X (pages/s)", "R+Z (s)"),
            rows,
            precision=3,
            title="VINS workflow mix — exact multi-class MVA",
        )
    )

    _, base = solve(base_mix)
    _, heavy = solve(heavy_read)
    renew_idx = list(WORKFLOWS).index("Renew Policy")
    slowdown = (
        heavy.cycle_times[renew_idx] / base.cycle_times[renew_idx] - 1
    ) * 100
    disk_idx = STATIONS.index("db.disk")
    print(
        f"\nDoubling read-only users raises Renew-Policy cycle time by "
        f"{slowdown:.1f}% (db.disk utilization "
        f"{base.utilizations[disk_idx]:.0%} -> {heavy.utilizations[disk_idx]:.0%}): "
        "read traffic is disk-light, so the write-heavy classes keep most "
        "of their capacity — a conclusion invisible to a single-class model."
    )


if __name__ == "__main__":
    main()
